"""Forward-value correctness of the op zoo against numpy references."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor
from repro.nn import functional as F

RNG = np.random.default_rng(7)

finite_floats = st.floats(min_value=-10, max_value=10, allow_nan=False,
                          allow_infinity=False, width=64)


def small_arrays(max_side: int = 4):
    return arrays(np.float64, st.tuples(st.integers(1, max_side), st.integers(1, max_side)),
                  elements=finite_floats)


class TestForwardValues:
    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(Tensor(RNG.normal(size=(5, 7))), axis=1).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5))

    def test_softmax_extreme_values_stable(self):
        out = F.softmax(Tensor(np.array([[1000.0, 0.0], [-1000.0, 0.0]]))).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_log_softmax_matches_log_of_softmax(self):
        x = RNG.normal(size=(3, 5))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data),
            atol=1e-12)

    def test_sigmoid_bounds_and_symmetry(self):
        x = RNG.normal(size=100) * 5
        s = F.sigmoid(Tensor(x)).data
        assert ((s > 0) & (s < 1)).all()
        np.testing.assert_allclose(s + F.sigmoid(Tensor(-x)).data, np.ones(100),
                                   atol=1e-12)

    def test_bce_with_logits_matches_manual(self):
        z = RNG.normal(size=(4, 3))
        q = (RNG.random((4, 3)) > 0.5).astype(float)
        p = 1.0 / (1.0 + np.exp(-z))
        manual = -(q * np.log(p) + (1 - q) * np.log(1 - p)).mean()
        assert float(F.bce_with_logits(Tensor(z), q).data) == pytest.approx(manual)

    def test_bce_extreme_logits_finite(self):
        z = np.array([[500.0, -500.0]])
        q = np.array([[1.0, 0.0]])
        assert np.isfinite(float(F.bce_with_logits(Tensor(z), q).data))

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.full((2, 4), -20.0)
        logits[0, 1] = 20.0
        logits[1, 3] = 20.0
        loss = float(F.cross_entropy(Tensor(logits), np.array([1, 3])).data)
        assert loss < 1e-8

    def test_conv2d_identity_kernel(self):
        x = RNG.normal(size=(1, 1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        np.testing.assert_allclose(out, x, atol=1e-12)

    def test_conv2d_output_shape(self):
        out = F.conv2d(Tensor(np.zeros((2, 3, 8, 8))), Tensor(np.zeros((5, 3, 3, 3))),
                       stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_conv2d_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channel"):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((3, 5, 3, 3))))

    def test_max_pool2d_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_layer_norm_zero_mean_unit_var(self):
        x = RNG.normal(size=(6, 10)) * 5 + 3
        out = F.layer_norm(Tensor(x), Tensor(np.ones(10)), Tensor(np.zeros(10))).data
        np.testing.assert_allclose(out.mean(axis=1), np.zeros(6), atol=1e-9)
        np.testing.assert_allclose(out.std(axis=1), np.ones(6), atol=1e-2)

    def test_batch_norm_updates_running_stats(self):
        rm, rv = np.zeros(3), np.ones(3)
        x = RNG.normal(size=(50, 3)) + 5.0
        F.batch_norm(Tensor(x), Tensor(np.ones(3)), Tensor(np.zeros(3)),
                     rm, rv, training=True, momentum=1.0)
        np.testing.assert_allclose(rm, x.mean(axis=0))
        np.testing.assert_allclose(rv, x.var(axis=0))

    def test_batch_norm_eval_uses_running_stats(self):
        rm, rv = np.array([1.0, 2.0]), np.array([4.0, 9.0])
        x = np.array([[1.0, 2.0]])
        out = F.batch_norm(Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)),
                           rm, rv, training=False)
        np.testing.assert_allclose(out.data, [[0.0, 0.0]], atol=1e-3)

    def test_dropout_eval_is_identity(self):
        x = Tensor(RNG.normal(size=(4, 4)))
        assert F.dropout(x, 0.5, training=False) is x

    def test_dropout_zero_p_is_identity(self):
        x = Tensor(RNG.normal(size=(4, 4)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_dropout_preserves_expectation(self):
        gen = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=gen).data
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_p_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_embedding_gathers_rows(self):
        w = RNG.normal(size=(5, 3))
        out = F.embedding(Tensor(w), np.array([4, 0]))
        np.testing.assert_allclose(out.data, w[[4, 0]])

    def test_scatter_sum_values(self):
        src = np.array([[1.0], [2.0], [3.0]])
        out = F.scatter_sum(Tensor(src), np.array([1, 1, 0]), 3).data
        np.testing.assert_allclose(out, [[3.0], [3.0], [0.0]])

    def test_scatter_mean_empty_segment_is_zero(self):
        src = np.ones((2, 2))
        out = F.scatter_mean(Tensor(src), np.array([0, 0]), 3).data
        np.testing.assert_allclose(out[1:], np.zeros((2, 2)))

    def test_logsigmoid_matches_reference(self):
        x = RNG.normal(size=20) * 10
        np.testing.assert_allclose(F.logsigmoid(Tensor(x)).data,
                                   np.log(1.0 / (1.0 + np.exp(-x))), atol=1e-9)

    def test_concat_roundtrip(self):
        a, b = RNG.normal(size=(2, 3)), RNG.normal(size=(2, 4))
        out = F.concat([Tensor(a), Tensor(b)], axis=1).data
        np.testing.assert_allclose(out, np.concatenate([a, b], axis=1))


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(small_arrays())
    def test_softmax_is_distribution(self, x):
        out = F.softmax(Tensor(x), axis=-1).data
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(x.shape[0]), atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(small_arrays())
    def test_add_commutes(self, x):
        y = x[::-1].copy()
        np.testing.assert_allclose(F.add(Tensor(x), Tensor(y)).data,
                                   F.add(Tensor(y), Tensor(x)).data)

    @settings(max_examples=40, deadline=None)
    @given(small_arrays())
    def test_relu_idempotent(self, x):
        once = F.relu(Tensor(x)).data
        twice = F.relu(Tensor(once)).data
        np.testing.assert_allclose(once, twice)

    @settings(max_examples=40, deadline=None)
    @given(small_arrays())
    def test_l2_normalize_unit_norm(self, x):
        assume(np.all(np.linalg.norm(x, axis=-1) > 1e-3))
        norms = np.linalg.norm(F.l2_normalize(Tensor(x)).data, axis=-1)
        np.testing.assert_allclose(norms, np.ones(x.shape[0]), atol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(small_arrays(), st.integers(0, 1))
    def test_sum_matches_numpy(self, x, axis):
        np.testing.assert_allclose(F.sum(Tensor(x), axis=axis).data, x.sum(axis=axis))
