"""Autograd engine mechanics: graph recording, backward, modes."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor, no_grad
from repro.nn.tensor import is_grad_enabled, unbroadcast


class TestTensorBasics:
    def test_wraps_array(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.ndim == 2
        assert t.size == 4
        assert t.dtype == np.float64

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_zeros_ones_constructors(self):
        assert Tensor.zeros(2, 3).data.sum() == 0
        assert Tensor.ones(2, 3).data.sum() == 6

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_numpy_returns_underlying(self):
        t = Tensor([1.0])
        assert t.numpy() is t.data


class TestBackward:
    def test_simple_chain(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * x + x) * 3.0
        y.backward()
        # d/dx 3(x^2 + x) = 3(2x + 1) = 15 at x=2
        assert x.grad == pytest.approx(15.0)

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0, 5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (x * 2.0).backward()

    def test_backward_with_explicit_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()

    def test_shared_subexpression_counted_twice(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x  # used twice below
        z = y + y
        z.backward()
        assert x.grad == pytest.approx(12.0)  # d/dx 2x^2 = 4x

    def test_deep_graph_no_recursion_error(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        assert x.grad == pytest.approx(1.0)

    def test_intermediate_grads_freed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        mid = x * 2.0
        mid.sum().backward()
        assert mid.grad is None          # freed
        assert x.grad is not None        # leaf kept


class TestNoGrad:
    def test_no_grad_disables_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()


class TestParameter:
    def test_always_requires_grad(self):
        with no_grad():
            p = Parameter(np.zeros(3))
        assert p.requires_grad

    def test_parameter_grad_kept_after_backward(self):
        p = Parameter(np.ones(3))
        (p * 2.0).sum().backward()
        np.testing.assert_allclose(p.grad, [2.0, 2.0, 2.0])


class TestUnbroadcast:
    def test_no_change_when_shape_matches(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 4.0))

    def test_sums_expanded_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, np.full((2, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, ())
        assert out == pytest.approx(6.0)


class TestOperatorSugar:
    def test_radd_rsub_rmul_rtruediv(self):
        x = Tensor([2.0], requires_grad=True)
        np.testing.assert_allclose((1.0 + x).data, [3.0])
        np.testing.assert_allclose((1.0 - x).data, [-1.0])
        np.testing.assert_allclose((3.0 * x).data, [6.0])
        np.testing.assert_allclose((4.0 / x).data, [2.0])

    def test_pow_and_neg(self):
        x = Tensor([2.0])
        np.testing.assert_allclose((x ** 3).data, [8.0])
        np.testing.assert_allclose((-x).data, [-2.0])

    def test_transpose_property(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)

    def test_reshape_with_tuple_and_args(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape((3, 2)).shape == (3, 2)
        assert x.flatten().shape == (6,)

    def test_getitem_slices(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        y = x[2:5]
        y.sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_mean_matches_numpy(self):
        x = Tensor(np.arange(12.0).reshape(3, 4))
        np.testing.assert_allclose(x.mean(axis=0).data, np.arange(12.0).reshape(3, 4).mean(0))
