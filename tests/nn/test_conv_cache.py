"""Conv2d im2col column-buffer cache (inference fast path)."""

import numpy as np

from repro import nn
from repro.nn import functional as F


def _conv(rng):
    return nn.Conv2d(2, 4, 3, padding=1, rng=rng)


def test_cache_populated_only_under_no_grad():
    rng = np.random.default_rng(0)
    conv = _conv(rng)
    x = nn.Tensor(rng.normal(size=(3, 2, 5, 5)))
    conv(x)  # grad enabled: buffer must stay private to the call
    assert conv._col_cache == {}
    with nn.no_grad():
        conv(x)
    assert (3, 2, 5, 5) in conv._col_cache


def test_cached_buffer_reused_and_values_match():
    rng = np.random.default_rng(1)
    conv = _conv(rng)
    x = rng.normal(size=(4, 2, 5, 5))
    reference = conv(nn.Tensor(x)).data
    with nn.no_grad():
        first = conv(nn.Tensor(x)).data
        buffer_id = id(conv._col_cache[(4, 2, 5, 5)])
        second = conv(nn.Tensor(x)).data
        assert id(conv._col_cache[(4, 2, 5, 5)]) == buffer_id  # reused, not realloc'd
    np.testing.assert_allclose(first, reference)
    np.testing.assert_allclose(second, reference)


def test_distinct_shapes_get_distinct_buffers():
    rng = np.random.default_rng(2)
    conv = _conv(rng)
    with nn.no_grad():
        conv(nn.Tensor(rng.normal(size=(2, 2, 5, 5))))
        conv(nn.Tensor(rng.normal(size=(7, 2, 5, 5))))
    assert len(conv._col_cache) == 2


def test_cache_bounded():
    rng = np.random.default_rng(3)
    conv = _conv(rng)
    with nn.no_grad():
        for n in range(1, conv._COL_CACHE_LIMIT + 4):
            conv(nn.Tensor(rng.normal(size=(n, 2, 5, 5))))
    assert len(conv._col_cache) <= conv._COL_CACHE_LIMIT + 1


def test_training_gradients_unaffected_by_warm_cache():
    """A warm inference cache must not corrupt the training graph."""
    rng = np.random.default_rng(4)
    conv = _conv(rng)
    x = rng.normal(size=(2, 2, 5, 5))
    with nn.no_grad():
        conv(nn.Tensor(x))  # warm the cache
    out = conv(nn.Tensor(x))
    loss = F.mean(F.mul(out, out))
    loss.backward()
    grad = conv.weight.grad.copy()

    fresh = _conv(np.random.default_rng(4))
    out2 = fresh(nn.Tensor(x))
    loss2 = F.mean(F.mul(out2, out2))
    loss2.backward()
    np.testing.assert_allclose(grad, fresh.weight.grad)


def test_im2col_out_buffer_matches_fresh():
    from repro.nn.functional import _im2col

    rng = np.random.default_rng(5)
    x = rng.normal(size=(2, 3, 6, 6))
    fresh, oh, ow = _im2col(x, 3, 3, 1, 1)
    buf = np.empty_like(fresh)
    reused, oh2, ow2 = _im2col(x, 3, 3, 1, 1, out=buf)
    assert reused is buf and (oh, ow) == (oh2, ow2)
    np.testing.assert_array_equal(reused, fresh)
    # Mismatched buffer is ignored, not corrupted.
    bad = np.empty((1, 1, 1))
    replaced, _, _ = _im2col(x, 3, 3, 1, 1, out=bad)
    assert replaced is not bad
    np.testing.assert_array_equal(replaced, fresh)
