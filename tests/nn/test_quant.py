"""Quantized embedding tables: error bounds, memory, kernels, payload."""

import numpy as np
import pytest

from repro.nn import QuantizedTable, quantize_table
from repro.nn.quant import QUANT_MODES


@pytest.fixture()
def weight():
    return np.random.default_rng(0).normal(size=(128, 24))


class TestInt8:
    def test_memory_within_30_percent_of_float64(self, weight):
        table = QuantizedTable.quantize(weight, "int8")
        assert table.compression_vs_float64() <= 0.30
        assert table.nbytes == weight.size + weight.shape[1] * 8

    def test_reconstruction_error_bounded_by_half_scale(self, weight):
        table = QuantizedTable.quantize(weight, "int8")
        err = np.abs(table.dequantize() - weight)
        # Symmetric rounding: every cell within scale/2 of the original,
        # with a tiny epsilon for the division round-trip.
        assert np.all(err <= table.scale / 2 + 1e-12)

    def test_zero_column_round_trips_exactly(self):
        w = np.random.default_rng(1).normal(size=(32, 4))
        w[:, 2] = 0.0
        table = QuantizedTable.quantize(w, "int8")
        np.testing.assert_array_equal(table.dequantize()[:, 2], 0.0)
        assert table.scale[2] == 1.0  # divide-by-zero guard

    def test_codes_are_int8(self, weight):
        table = QuantizedTable.quantize(weight, "int8")
        assert table.codes.dtype == np.int8
        assert np.abs(table.codes).max() <= 127


class TestKernels:
    @pytest.mark.parametrize("mode", QUANT_MODES)
    def test_gather_matches_dequantize_rows(self, weight, mode):
        table = QuantizedTable.quantize(weight, mode)
        ids = np.array([0, 5, 5, 127])
        np.testing.assert_array_equal(table.gather(ids),
                                      table.dequantize()[ids])
        assert table.gather(ids).dtype == np.float64

    def test_float64_mode_is_lossless(self, weight):
        table = QuantizedTable.quantize(weight, "float64")
        np.testing.assert_array_equal(table.dequantize(), weight)

    def test_float16_halves_twice(self, weight):
        table = QuantizedTable.quantize(weight, "float16")
        assert table.compression_vs_float64() == 0.25
        np.testing.assert_allclose(table.dequantize(), weight, atol=1e-2)

    @pytest.mark.parametrize("mode", QUANT_MODES)
    def test_dot_matches_dequantized_gemm(self, weight, mode):
        table = QuantizedTable.quantize(weight, mode)
        queries = np.random.default_rng(2).normal(size=(3, weight.shape[1]))
        ref = queries @ table.dequantize().T
        np.testing.assert_allclose(table.dot(queries), ref, rtol=1e-5)
        ids = np.array([1, 9, 64])
        np.testing.assert_allclose(table.dot(queries, ids), ref[:, ids],
                                   rtol=1e-5)

    def test_unknown_mode_raises(self, weight):
        with pytest.raises(ValueError, match="int4"):
            quantize_table(weight, "int4")
        with pytest.raises(ValueError, match="2-D"):
            quantize_table(np.zeros(5), "int8")


class TestPayload:
    @pytest.mark.parametrize("mode", ("int8", "float16"))
    def test_round_trip(self, weight, mode):
        table = QuantizedTable.quantize(weight, mode)
        clone = QuantizedTable.from_arrays(table.to_arrays(prefix="t_"),
                                           mode, prefix="t_")
        np.testing.assert_array_equal(clone.codes, table.codes)
        np.testing.assert_array_equal(clone.dequantize(), table.dequantize())
