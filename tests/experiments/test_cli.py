"""The `python -m repro.experiments` command-line runner."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_every_experiment_registered(self):
        assert set(EXPERIMENTS) == {
            "table2", "table3", "table4", "table5",
            "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        }

    def test_table2_smoke(self, capsys):
        assert main(["table2", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_fig4_smoke(self, capsys):
        assert main(["fig4", "--scale", "smoke"]) == 0
        assert "degree histogram" in capsys.readouterr().out

    def test_table3_single_dataset(self, capsys):
        assert main(["table3", "--scale", "smoke",
                     "--datasets", "drkg-mm"]) == 0
        out = capsys.readouterr().out
        assert "drkg-mm" in out and "omaha" not in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            main(["table2", "--scale", "galactic"])
