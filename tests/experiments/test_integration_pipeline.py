"""End-to-end integration: the full paper pipeline at smoke scale.

These tests exercise the complete chain — dataset generation, modality
pre-training, CamE training, filtered evaluation — and assert learning
actually happens (trained model beats its untrained self).
"""

import numpy as np
import pytest

from repro.core import CamE, CamEConfig, OneToNTrainer
from repro.datasets import build_features, get_dataset
from repro.eval import evaluate_ranking
from repro.nn import load_module, save_module


@pytest.fixture(scope="module")
def pipeline():
    mkg = get_dataset("drkg-mm", scale=0.2, seed=5)
    feats = build_features(mkg, np.random.default_rng(0), d_m=8, d_t=8, d_s=8,
                           gin_epochs=1, compgcn_epochs=2)
    return mkg, feats


CFG = CamEConfig(entity_dim=16, relation_dim=16, fusion_dim=16,
                 fusion_height=4, fusion_width=4, conv_channels=8)


class TestEndToEnd:
    def test_training_beats_untrained(self, pipeline):
        mkg, feats = pipeline
        rng = np.random.default_rng(1)
        model = CamE(mkg.num_entities, mkg.num_relations, feats, CFG, rng=rng)
        before = evaluate_ranking(model, mkg.split, part="valid",
                                  max_queries=40, rng=np.random.default_rng(2))
        OneToNTrainer(model, mkg.split, rng, lr=5e-3, batch_size=64).fit(10)
        after = evaluate_ranking(model, mkg.split, part="valid",
                                 max_queries=40, rng=np.random.default_rng(2))
        assert after.mrr > before.mrr
        assert after.mr < before.mr

    def test_checkpoint_roundtrip_preserves_predictions(self, pipeline, tmp_path):
        mkg, feats = pipeline
        rng = np.random.default_rng(1)
        model = CamE(mkg.num_entities, mkg.num_relations, feats, CFG, rng=rng)
        OneToNTrainer(model, mkg.split, rng, lr=5e-3, batch_size=64).fit(2)
        path = str(tmp_path / "came.npz")
        save_module(model, path)
        clone = CamE(mkg.num_entities, mkg.num_relations, feats, CFG,
                     rng=np.random.default_rng(99))
        load_module(clone, path)
        heads, rels = np.array([0, 1]), np.array([0, 1])
        np.testing.assert_allclose(clone.predict_tails(heads, rels),
                                   model.predict_tails(heads, rels), atol=1e-10)

    def test_multimodal_beats_structure_only_on_drkg(self, pipeline):
        """The paper's core claim in miniature: modalities carry signal."""
        mkg, feats = pipeline

        def train_and_eval(cfg, seed=1):
            rng = np.random.default_rng(seed)
            model = CamE(mkg.num_entities, mkg.num_relations, feats, cfg, rng=rng)
            OneToNTrainer(model, mkg.split, rng, lr=5e-3, batch_size=64).fit(15)
            return evaluate_ranking(model, mkg.split, part="valid",
                                    max_queries=60,
                                    rng=np.random.default_rng(3)).mrr

        full = np.mean([train_and_eval(CFG, s) for s in (1, 2)])
        stripped_cfg = CFG.variant(use_text=False, use_molecule=False)
        stripped = np.mean([train_and_eval(stripped_cfg, s) for s in (1, 2)])
        # Allow noise, but the stripped model should not dominate.
        assert full >= stripped * 0.85
