"""Experiment harnesses run end-to-end at smoke scale and render output."""

import numpy as np
import pytest

from repro.experiments import (
    ABLATIONS,
    SMOKE,
    PAPER_TABLE3,
    format_histogram,
    format_series,
    format_table,
    get_scale,
    improvement_over_best_competitor,
    mine_diamonds,
    render_fig1,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    run_fig1,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8a,
    run_fig8b,
    run_fig9,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    train_model,
    get_prepared,
)


class TestScalePresets:
    def test_lookup(self):
        assert get_scale("smoke") is SMOKE

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("galactic")


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["A", "BB"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out

    def test_format_series(self):
        out = format_series({"m": [(1, 2.0)]}, "x", "y", title="S")
        assert "[m]" in out and "1:2.00" in out

    def test_format_histogram(self):
        out = format_histogram([5, 0], [0.0, 1.0, 2.0], title="H")
        assert "#" in out


class TestRunnerCaching:
    def test_train_model_cached(self):
        a = train_model("DistMult", "drkg-mm", SMOKE)
        b = train_model("DistMult", "drkg-mm", SMOKE)
        assert a is b

    def test_get_prepared_cached(self):
        a = get_prepared("drkg-mm", SMOKE)
        b = get_prepared("drkg-mm", SMOKE)
        assert a[0] is b[0]


class TestTable2:
    def test_stats_and_render(self):
        stats = run_table2(SMOKE)
        assert set(stats) == {"drkg-mm", "omaha-mm"}
        out = render_table2(stats)
        assert "Table II" in out and "drkg-mm" in out

    def test_split_ratio_near_811(self):
        stats = run_table2(SMOKE)
        for row in stats.values():
            total = row["#Train"] + row["#Valid"] + row["#Test"]
            assert row["#Train"] / total >= 0.75


class TestTable3:
    def test_subset_run_and_render(self):
        results = run_table3(SMOKE, datasets=("drkg-mm",),
                             models=("DistMult", "CamE"))
        assert set(results["drkg-mm"]) == {"DistMult", "CamE"}
        out = render_table3(results)
        assert "Table III" in out and "improvement" in out

    def test_improvement_math(self):
        from repro.eval import RankingMetrics
        results = {
            "CamE": RankingMetrics(mr=1, mrr=50.0, hits={1: 40.0}),
            "Best": RankingMetrics(mr=1, mrr=40.0, hits={1: 20.0}),
        }
        assert improvement_over_best_competitor(results, "mrr") == pytest.approx(25.0)
        assert improvement_over_best_competitor(results, "hits1") == pytest.approx(100.0)

    def test_paper_reference_table_complete(self):
        for dataset in ("drkg-mm", "omaha-mm"):
            assert len(PAPER_TABLE3[dataset]) == 14


class TestTable45:
    def test_table5_families(self):
        counts = run_table5(SMOKE)
        assert "Gene-Gene" in counts
        assert "Table V" in render_table5(counts)

    def test_table4_runs(self):
        results = run_table4(SMOKE, models=("DistMult",))
        assert "DistMult" in results
        assert "Table IV" in render_table4(results)


class TestFig1:
    def test_diamond_mining_structure(self):
        mkg, _ = get_prepared("drkg-mm", SMOKE)
        diamonds = mine_diamonds(mkg, rng=np.random.default_rng(0))
        types = mkg.graph.entity_types
        for e0, e1, e2, e3, same in diamonds[:20]:
            assert types[e0] == types[e1] == types[e2] == "Compound"
            assert types[e3] == "Gene"
            assert isinstance(same, bool)

    def test_run_and_render(self):
        result = run_fig1(SMOKE, repeats=3, top_k=10)
        assert result.baseline_same_rate == pytest.approx(50.0, abs=1.0)
        assert 0.0 <= result.filtered_same_rate <= 100.0
        assert "diamond" in render_fig1(result)


class TestFig4:
    def test_run_and_render(self):
        stats = run_fig4(SMOKE)
        assert stats["drkg-mm"].gini >= 0.0
        out = render_fig4(stats)
        assert "degree histogram" in out


class TestFig5:
    def test_single_sweep(self):
        results = run_fig5(SMOKE, sweeps={"heads": (1, 2)})
        assert [v for v, _ in results["heads"]] == [1, 2]
        assert "Fig. 5" in render_fig5(results)


class TestFig6:
    def test_ablation_names(self):
        assert "w/o TCA" in ABLATIONS and "full" in ABLATIONS

    def test_two_variants(self):
        results = run_fig6(SMOKE, ablations=("full", "w/o TD"))
        assert set(results) == {"full", "w/o TD"}
        assert "ablation" in render_fig6(results)


class TestFig7:
    def test_case_study(self):
        case = run_fig7(SMOKE, max_queries=5)
        assert case.predictions
        assert case.head_name
        out = render_fig7(case)
        assert "top-1" in out


class TestFig8:
    def test_histories(self):
        series = run_fig8a(SMOKE, models=("DistMult",))
        assert series["DistMult"]
        series_b = run_fig8b(SMOKE, ablations=("full",))
        out = render_fig8(series, series_b)
        assert "Fig. 8(a)" in out and "Fig. 8(b)" in out


class TestFig9:
    def test_timings_positive_and_rendered(self):
        points = run_fig9(SMOKE, variants=("full",), fractions=(0.5, 1.0))
        assert len(points) == 2
        assert all(p.train_seconds > 0 and p.test_seconds > 0 for p in points)
        assert "training time" in render_fig9(points)

    def test_larger_fraction_not_faster(self):
        points = run_fig9(SMOKE, variants=("full",), fractions=(0.25, 1.0))
        by_frac = {p.fraction: p.train_seconds for p in points}
        assert by_frac[1.0] >= by_frac[0.25] * 0.8  # allow timer noise
