"""The shipped examples stay runnable (smoke-run with tiny budgets)."""

import os
import subprocess
import sys

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *args],
        capture_output=True, text=True, timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py", "--epochs", "2", "--scale", "0.15")
        assert proc.returncode == 0, proc.stderr
        assert "test" in proc.stdout

    def test_drug_repurposing(self):
        proc = _run("drug_repurposing.py", "--epochs", "2",
                    "--scale", "0.15", "--drugs", "2")
        assert proc.returncode == 0, proc.stderr
        assert "candidate" in proc.stdout

    def test_drug_drug_interaction(self):
        proc = _run("drug_drug_interaction.py", "--epochs", "2", "--scale", "0.15")
        assert proc.returncode == 0, proc.stderr
        assert "DDI" in proc.stdout or "ddi" in proc.stdout.lower()

    def test_custom_multimodal_kg(self):
        proc = _run("custom_multimodal_kg.py")
        assert proc.returncode == 0, proc.stderr
        assert "Oxacillin" in proc.stdout

    def test_dist_smoke(self):
        proc = _run("dist_smoke.py", "--workers", "2", "--epochs", "2")
        assert proc.returncode == 0, proc.stderr
        assert "clean shutdown" in proc.stdout
