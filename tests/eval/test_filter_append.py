"""CSRFilter.append_rows: streaming growth of the known-triple filter."""

import numpy as np
import pytest

from repro.eval import build_csr_filter
from repro.kg import KGSplit, KnowledgeGraph, Vocabulary


def tiny_split(num_entities=6, num_relations=2):
    graph = KnowledgeGraph(
        entities=Vocabulary(f"e{i}" for i in range(num_entities)),
        relations=Vocabulary(f"r{i}" for i in range(num_relations)),
        triples=np.array([[0, 0, 1], [1, 1, 2], [2, 0, 3]]))
    return KGSplit(graph=graph,
                   train=np.array([[0, 0, 1], [1, 1, 2]]),
                   valid=np.array([[2, 0, 3]]),
                   test=np.empty((0, 3), dtype=np.int64))


class TestAppendRows:
    def test_covers_both_directions(self):
        split = tiny_split()
        filt = build_csr_filter(split)
        new = np.array([[4, 0, 1], [0, 1, 5]])
        grown = filt.append_rows(new, num_relations=2, num_entities=6)
        np.testing.assert_array_equal(grown.row(4, 0), [1])
        np.testing.assert_array_equal(grown.row(1, 0 + 2), [0, 4])  # inverse
        np.testing.assert_array_equal(grown.row(0, 1), [5])
        np.testing.assert_array_equal(grown.row(5, 1 + 2), [0])

    def test_original_rows_survive_and_structure_is_immutable(self):
        split = tiny_split()
        filt = build_csr_filter(split)
        grown = filt.append_rows(np.array([[4, 0, 1]]),
                                 num_relations=2, num_entities=6)
        assert grown is not filt
        np.testing.assert_array_equal(grown.row(0, 0), filt.row(0, 0))
        np.testing.assert_array_equal(grown.row(2, 0), [3])
        # The source filter never learned the appended triple.
        assert len(filt.row(4, 0)) == 0

    def test_duplicate_cells_collapse(self):
        split = tiny_split()
        filt = build_csr_filter(split)
        grown = filt.append_rows(np.array([[0, 0, 1], [0, 0, 1]]),
                                 num_relations=2, num_entities=6)
        np.testing.assert_array_equal(grown.row(0, 0), [1])
        assert grown.nnz == filt.nnz

    def test_new_entity_ids_pack_with_grown_count(self):
        split = tiny_split()
        filt = build_csr_filter(split)
        grown = filt.append_rows(np.array([[7, 1, 0]]),
                                 num_relations=2, num_entities=8)
        np.testing.assert_array_equal(grown.row(7, 1), [0])
        np.testing.assert_array_equal(grown.row(0, 1 + 2), [7])

    def test_empty_append_returns_self(self):
        filt = build_csr_filter(tiny_split())
        assert filt.append_rows(np.empty((0, 3)), num_relations=2,
                                num_entities=6) is filt

    def test_relation_count_cannot_change(self):
        filt = build_csr_filter(tiny_split())
        with pytest.raises(ValueError, match="relation count"):
            filt.append_rows(np.array([[0, 0, 1]]), num_relations=3,
                             num_entities=6)

    def test_matches_filter_built_from_scratch(self):
        split = tiny_split()
        new = np.array([[4, 1, 2], [3, 0, 5]])
        grown = build_csr_filter(split).append_rows(
            new, num_relations=2, num_entities=6)
        full_graph = KnowledgeGraph(
            entities=split.graph.entities, relations=split.graph.relations,
            triples=np.concatenate([split.graph.triples, new]))
        scratch = build_csr_filter(KGSplit(
            graph=full_graph,
            train=np.concatenate([split.train, new]),
            valid=split.valid, test=split.test))
        np.testing.assert_array_equal(grown.keys, scratch.keys)
        np.testing.assert_array_equal(grown.indptr, scratch.indptr)
        np.testing.assert_array_equal(grown.indices, scratch.indices)
