"""Evaluation protocol: metrics math, filtering, tie handling."""

import numpy as np
import pytest

from repro.eval import (
    RankingMetrics,
    build_filter,
    compute_ranks,
    evaluate_per_relation_family,
    evaluate_ranking,
    family_of_triples,
)
from repro.kg import KGSplit, KnowledgeGraph, Vocabulary


class OracleScorer:
    """Scores every true tail highest for every known query.

    Under the filtered protocol all other true tails are removed from
    the candidate list, so this oracle must achieve rank 1 everywhere.
    """

    def __init__(self, split, num_entities):
        self.answers = build_filter(split)
        self.num_entities = num_entities

    def predict_tails(self, heads, rels):
        scores = np.zeros((len(heads), self.num_entities))
        for i, (h, r) in enumerate(zip(heads, rels)):
            for target in self.answers.get((int(h), int(r)), []):
                scores[i, target] = 10.0
        return scores


class ConstantScorer:
    def __init__(self, num_entities):
        self.num_entities = num_entities

    def predict_tails(self, heads, rels):
        return np.zeros((len(heads), self.num_entities))


def small_split():
    g = KnowledgeGraph(
        entities=Vocabulary([f"e{i}" for i in range(10)]),
        relations=Vocabulary(["r0", "r1"]),
        triples=np.array([[0, 0, 1], [1, 0, 2], [2, 1, 3], [3, 0, 4],
                          [4, 1, 5], [5, 0, 6], [0, 0, 2]]),
        entity_types=["Compound"] * 5 + ["Gene"] * 5,
    )
    return KGSplit(graph=g, train=g.triples[:5], valid=g.triples[5:6],
                   test=g.triples[6:])


class TestRankingMetrics:
    def test_from_ranks_math(self):
        m = RankingMetrics.from_ranks(np.array([1, 2, 10]))
        assert m.mr == pytest.approx((1 + 2 + 10) / 3)
        assert m.mrr == pytest.approx((1 + 0.5 + 0.1) / 3 * 100)
        assert m.hits[1] == pytest.approx(100 / 3)
        assert m.hits[10] == pytest.approx(100.0)
        assert m.num_queries == 3

    def test_empty_ranks_nan(self):
        m = RankingMetrics.from_ranks(np.array([]))
        assert np.isnan(m.mrr) and m.num_queries == 0

    def test_as_row_rounding(self):
        row = RankingMetrics.from_ranks(np.array([3])).as_row()
        assert row["MRR"] == pytest.approx(33.3)
        assert set(row) == {"MRR", "MR", "Hits@1", "Hits@3", "Hits@10"}


class TestFilteredRanking:
    def test_oracle_gets_rank_one(self):
        split = small_split()
        oracle = OracleScorer(split, 10)
        metrics = evaluate_ranking(oracle, split, part="test")
        assert metrics.mrr == pytest.approx(100.0)
        assert metrics.hits[1] == pytest.approx(100.0)

    def test_constant_scorer_gets_mid_rank(self):
        """Tie-breaking must give a constant model the expected mean rank."""
        split = small_split()
        scorer = ConstantScorer(10)
        ranks = compute_ranks(scorer, split, split.test, both_directions=False)
        # 10 entities, test query (0, r0, 2): 1 other true tail filtered
        # (train has (0,0,1)) -> 9 candidates all tied -> mean rank (1+9)/2.
        assert ranks[0] == pytest.approx(5.0)

    def test_filter_excludes_other_true_tails(self):
        split = small_split()
        filters = build_filter(split)
        # (0, r0) has true tails {1, 2} across splits.
        assert set(filters[(0, 0)].tolist()) == {1, 2}

    def test_filter_has_inverse_queries(self):
        split = small_split()
        filters = build_filter(split)
        # Inverse query for (0,0,1): (1, r0+2) -> head 0.
        assert 0 in filters[(1, 0 + 2)].tolist()

    def test_both_directions_doubles_queries(self):
        split = small_split()
        oracle = OracleScorer(split, 10)
        one = compute_ranks(oracle, split, split.test, both_directions=False)
        two = compute_ranks(oracle, split, split.test, both_directions=True)
        assert len(two) == 2 * len(one)

    def test_max_queries_subsamples(self):
        split = small_split()
        oracle = OracleScorer(split, 10)
        ranks = compute_ranks(oracle, split, split.train, max_queries=2,
                              rng=np.random.default_rng(0))
        assert len(ranks) == 4  # 2 queries x 2 directions

    def test_filtering_improves_rank(self):
        """A model that scores all true tails equally high must not be
        penalised for ranking other true tails above the target."""
        split = small_split()

        class TrueTailScorer:
            def predict_tails(self, heads, rels):
                scores = np.zeros((len(heads), 10))
                filters = build_filter(split)
                for i, (h, r) in enumerate(zip(heads, rels)):
                    for t in filters.get((int(h), int(r)), []):
                        scores[i, t] = 5.0
                return scores

        ranks = compute_ranks(TrueTailScorer(), split, split.test,
                              both_directions=False)
        assert ranks[0] == pytest.approx(1.0)


class TestPerRelationFamily:
    def test_family_labels_canonical(self):
        split = small_split()
        labels = family_of_triples(split, split.test)
        assert labels[0] == "Compound-Compound"

    def test_per_family_evaluation(self):
        split = small_split()
        oracle = OracleScorer(split, 10)
        results = evaluate_per_relation_family(oracle, split)
        assert all(m.mrr == pytest.approx(100.0) for m in results.values())
        assert "Compound-Compound" in results


class TestMetricsAverage:
    def test_average_of_two(self):
        a = RankingMetrics(mr=10.0, mrr=40.0, hits={1: 20.0, 10: 60.0}, num_queries=100)
        b = RankingMetrics(mr=20.0, mrr=60.0, hits={1: 40.0, 10: 80.0}, num_queries=100)
        avg = RankingMetrics.average([a, b])
        assert avg.mr == pytest.approx(15.0)
        assert avg.mrr == pytest.approx(50.0)
        assert avg.hits[1] == pytest.approx(30.0)

    def test_average_empty_raises(self):
        with pytest.raises(ValueError):
            RankingMetrics.average([])

    def test_average_single_is_identity(self):
        a = RankingMetrics(mr=5.0, mrr=33.0, hits={1: 10.0}, num_queries=7)
        avg = RankingMetrics.average([a])
        assert avg.mrr == a.mrr and avg.num_queries == 7
