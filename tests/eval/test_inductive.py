"""The unseen_entities split and inductive evaluation."""

import numpy as np
import pytest

from repro.baselines import TransE
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.eval import evaluate_inductive, make_unseen_split


@pytest.fixture(scope="module")
def world():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.2))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    return mkg, feats


@pytest.fixture(scope="module")
def ind(world):
    mkg, feats = world
    return make_unseen_split(mkg.split, fraction=0.1,
                             rng=np.random.default_rng(3), features=feats)


class TestMakeUnseenSplit:
    def test_seen_world_is_reindexed_and_closed(self, ind):
        seen = ind.seen
        assert seen.num_entities == ind.num_seen
        for part in (seen.train, seen.valid, seen.test):
            if len(part):
                assert part[:, [0, 2]].max() < ind.num_seen
        assert len(seen.graph.entities) == ind.num_seen

    def test_unseen_ids_are_deterministic_and_final(self, ind):
        for i, u in enumerate(ind.unseen):
            assert u.entity_id == ind.num_seen + i
            assert len(u.context) >= 1 and len(u.eval_triples) >= 1
            for block in (u.context, u.eval_triples):
                touches = (block[:, 0] == u.entity_id) | \
                          (block[:, 2] == u.entity_id)
                assert touches.all()
                others = np.where(block[:, 0] == u.entity_id,
                                  block[:, 2], block[:, 0])
                assert (others < ind.num_seen).all()  # other endpoint seen

    def test_names_and_features_align(self, ind, world):
        mkg, feats = world
        names = mkg.split.graph.entities.names()
        for u in ind.unseen:
            assert names[u.original_id] == u.name
            assert ind.seen.graph.entities.get(u.name) is None
        assert ind.features.molecular.shape[0] == ind.num_seen
        seen_names = ind.seen.graph.entities.names()
        # Feature rows were sliced in the same order as the vocabulary.
        orig_row = names.index(seen_names[0])
        np.testing.assert_array_equal(ind.features.textual[0],
                                      feats.textual[orig_row])

    def test_same_rng_is_reproducible(self, world):
        mkg, _ = world
        a = make_unseen_split(mkg.split, fraction=0.1,
                              rng=np.random.default_rng(3))
        b = make_unseen_split(mkg.split, fraction=0.1,
                              rng=np.random.default_rng(3))
        assert [u.name for u in a.unseen] == [u.name for u in b.unseen]
        np.testing.assert_array_equal(a.eval_triples(), b.eval_triples())

    def test_impossible_requests_raise(self, world):
        mkg, _ = world
        with pytest.raises(ValueError, match="incident"):
            make_unseen_split(mkg.split, num_unseen=10 ** 6)


class TestEvaluateInductive:
    def test_reports_both_regimes_without_mutating_inputs(self, ind):
        model = TransE(ind.num_seen, ind.seen.num_relations, dim=16,
                       rng=np.random.default_rng(1))
        snap = model.entity_embedding.weight.data.copy()
        vocab_size = len(ind.seen.graph.entities)
        report = evaluate_inductive(model, ind, rng=np.random.default_rng(5))
        assert model.num_entities == ind.num_seen  # deep-copied inside
        np.testing.assert_array_equal(model.entity_embedding.weight.data, snap)
        assert len(ind.seen.graph.entities) == vocab_size
        assert report.num_unseen == ind.num_unseen
        assert report.inductive.num_queries == 2 * len(ind.eval_triples())
        assert np.isfinite(report.inductive.mrr)
        assert np.isfinite(report.transductive.mrr)
        summary = report.summary()
        assert set(summary) == {"num_unseen", "num_context", "num_eval",
                                "transductive", "inductive"}

    def test_warm_start_path_runs(self, ind):
        model = TransE(ind.num_seen, ind.seen.num_relations, dim=16,
                       rng=np.random.default_rng(1))
        report = evaluate_inductive(model, ind, warm_start_epochs=2,
                                    rng=np.random.default_rng(5))
        assert np.isfinite(report.inductive.mrr)

    def test_wrong_model_size_rejected(self, ind):
        model = TransE(ind.num_seen + 5, ind.seen.num_relations, dim=16,
                       rng=np.random.default_rng(1))
        with pytest.raises(ValueError, match="seen split"):
            evaluate_inductive(model, ind)
