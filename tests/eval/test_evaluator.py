"""Vectorized evaluator: CSR filter correctness, rank parity, caching.

The parity class is the acceptance proof for the evaluator rewrite: the
batched CSR path must agree rank-for-rank (mean-rank tie convention
included) with the per-row reference implementation, on randomized,
constant, and heavily-tied scorers.
"""

import numpy as np
import pytest

import repro.eval.evaluator as evaluator_module
from repro.baselines import ConvE, TransE, NegativeSamplingTrainer
from repro.core import OneToNTrainer
from repro.eval import (
    RankingEvaluator,
    build_csr_filter,
    build_filter,
    compute_ranks,
    compute_ranks_reference,
    evaluate_per_relation_family,
    evaluate_ranking,
)
from repro.kg import KGSplit, KnowledgeGraph, Vocabulary


def random_split(num_entities=40, num_relations=5, n_train=120, n_valid=25,
                 n_test=25, seed=0) -> KGSplit:
    rng = np.random.default_rng(seed)
    total = n_train + n_valid + n_test
    triples = np.stack([
        rng.integers(0, num_entities, total),
        rng.integers(0, num_relations, total),
        rng.integers(0, num_entities, total),
    ], axis=1)
    # Duplicate some triples across partitions to stress de-duplication.
    triples[n_train:n_train + 5] = triples[:5]
    g = KnowledgeGraph(
        entities=Vocabulary([f"e{i}" for i in range(num_entities)]),
        relations=Vocabulary([f"r{i}" for i in range(num_relations)]),
        triples=triples,
        entity_types=["Compound"] * (num_entities // 2)
        + ["Gene"] * (num_entities - num_entities // 2),
    )
    return KGSplit(graph=g, train=triples[:n_train],
                   valid=triples[n_train:n_train + n_valid],
                   test=triples[n_train + n_valid:])


class RandomScorer:
    """Deterministic dense scores: per-head table + per-relation table."""

    def __init__(self, num_entities, num_relations, seed=0, quantize=None):
        rng = np.random.default_rng(seed)
        self.head_table = rng.normal(size=(num_entities, num_entities))
        self.rel_table = rng.normal(size=(2 * num_relations, num_entities))
        self.quantize = quantize

    def predict_tails(self, heads, rels):
        scores = self.head_table[heads] + self.rel_table[rels]
        if self.quantize is not None:
            # Few distinct levels -> heavy, adversarial tie structure.
            scores = np.round(scores * self.quantize) / self.quantize
        return scores


class ConstantScorer:
    def __init__(self, num_entities):
        self.num_entities = num_entities

    def predict_tails(self, heads, rels):
        return np.zeros((len(heads), self.num_entities))


class TestCSRFilter:
    def test_matches_dict_filter(self):
        split = random_split()
        csr = build_csr_filter(split)
        ref = build_filter(split)
        assert len(csr.keys) == len(ref)
        for (h, r), tails in ref.items():
            assert set(csr.row(h, r).tolist()) == set(tails.tolist()), (h, r)

    def test_rows_sorted_and_unique(self):
        split = random_split()
        csr = build_csr_filter(split)
        for i in range(len(csr.keys)):
            row = csr.indices[csr.indptr[i]:csr.indptr[i + 1]]
            assert (np.diff(row) > 0).all()

    def test_missing_query_is_empty(self):
        split = random_split()
        csr = build_csr_filter(split)
        assert len(csr.row(10 ** 6, 0)) == 0

    def test_gather_flattens_batch(self):
        split = random_split()
        csr = build_csr_filter(split)
        h, r = split.test[:8, 0], split.test[:8, 1]
        row_ids, entity_ids = csr.gather(h, r)
        assert len(row_ids) == len(entity_ids)
        for i in range(8):
            expected = csr.row(int(h[i]), int(r[i]))
            np.testing.assert_array_equal(np.sort(entity_ids[row_ids == i]),
                                          expected)

    def test_empty_split(self):
        split = random_split()
        empty = KGSplit(graph=split.graph,
                        train=np.empty((0, 3), dtype=np.int64),
                        valid=np.empty((0, 3), dtype=np.int64),
                        test=np.empty((0, 3), dtype=np.int64))
        csr = build_csr_filter(empty)
        assert csr.nnz == 0
        assert len(csr.row(0, 0)) == 0


class TestParity:
    """Vectorized ranks must match the per-row reference exactly."""

    def assert_parity(self, scorer, split, **kwargs):
        ref = compute_ranks_reference(scorer, split, split.test,
                                      rng=np.random.default_rng(7), **kwargs)
        ev = RankingEvaluator(split)
        new = ev.compute_ranks(scorer, split.test,
                               rng=np.random.default_rng(7), **kwargs)
        assert ref.shape == new.shape
        np.testing.assert_allclose(new, ref, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_scores(self, seed):
        split = random_split(seed=seed)
        scorer = RandomScorer(split.num_entities, split.num_relations, seed=seed)
        self.assert_parity(scorer, split)

    @pytest.mark.parametrize("quantize", [1, 2])
    def test_heavily_tied_scores(self, quantize):
        split = random_split(seed=3)
        scorer = RandomScorer(split.num_entities, split.num_relations,
                              seed=3, quantize=quantize)
        self.assert_parity(scorer, split)

    def test_constant_scores(self):
        split = random_split(seed=4)
        self.assert_parity(ConstantScorer(split.num_entities), split)

    def test_single_direction(self):
        split = random_split(seed=5)
        scorer = RandomScorer(split.num_entities, split.num_relations, seed=5)
        self.assert_parity(scorer, split, both_directions=False)

    def test_max_queries_subsample(self):
        split = random_split(seed=6)
        scorer = RandomScorer(split.num_entities, split.num_relations, seed=6)
        self.assert_parity(scorer, split, max_queries=10)

    def test_batch_size_invariance(self):
        split = random_split(seed=8)
        scorer = RandomScorer(split.num_entities, split.num_relations, seed=8)
        ev = RankingEvaluator(split)
        full = ev.compute_ranks(scorer, split.test, batch_size=128)
        for batch_size in (1, 7, 32):
            np.testing.assert_array_equal(
                ev.compute_ranks(scorer, split.test, batch_size=batch_size), full)

    def test_wrapper_equals_evaluator(self):
        split = random_split(seed=9)
        scorer = RandomScorer(split.num_entities, split.num_relations, seed=9)
        ev = RankingEvaluator(split)
        via_wrapper = compute_ranks(scorer, split, split.test, evaluator=ev)
        direct = ev.compute_ranks(scorer, split.test)
        np.testing.assert_array_equal(via_wrapper, direct)

    def test_float32_fast_path_on_separated_scores(self):
        split = random_split(seed=10)
        scorer = RandomScorer(split.num_entities, split.num_relations, seed=10)
        ref = RankingEvaluator(split).compute_ranks(scorer, split.test)
        fast = RankingEvaluator(split, score_dtype=np.float32)
        np.testing.assert_array_equal(fast.compute_ranks(scorer, split.test), ref)


class _CountingBuilder:
    def __init__(self):
        self.calls = 0
        self._real = evaluator_module.build_csr_filter

    def __call__(self, split, parts=("train", "valid", "test")):
        self.calls += 1
        return self._real(split, parts)


class TestFilterBuiltOncePerFit:
    """The CSR filter must be constructed exactly once per ``fit()``."""

    def test_negative_sampling_trainer(self, monkeypatch):
        counter = _CountingBuilder()
        monkeypatch.setattr(evaluator_module, "build_csr_filter", counter)
        split = random_split(seed=11)
        rng = np.random.default_rng(0)
        model = TransE(split.num_entities, split.num_relations, dim=8, rng=rng)
        trainer = NegativeSamplingTrainer(model, split, rng)
        trainer.fit(3, eval_every=1, eval_max_queries=10)
        assert counter.calls == 1

    def test_one_to_n_trainer(self, monkeypatch):
        counter = _CountingBuilder()
        monkeypatch.setattr(evaluator_module, "build_csr_filter", counter)
        split = random_split(seed=12)
        rng = np.random.default_rng(0)
        model = ConvE(split.num_entities, split.num_relations, dim=9,
                      conv_channels=4, rng=rng)
        trainer = OneToNTrainer(model, split, rng, batch_size=32)
        trainer.fit(3, eval_every=1, eval_max_queries=10)
        assert counter.calls == 1

    def test_per_relation_family_builds_once(self, monkeypatch):
        counter = _CountingBuilder()
        monkeypatch.setattr(evaluator_module, "build_csr_filter", counter)
        split = random_split(seed=13)
        scorer = RandomScorer(split.num_entities, split.num_relations, seed=13)
        results = evaluate_per_relation_family(scorer, split)
        assert len(results) >= 2  # several families, one filter build
        assert counter.calls == 1


class TestEvalBatchSizeKnob:
    def test_fit_accepts_eval_batch_size(self):
        split = random_split(seed=14)
        rng = np.random.default_rng(0)
        model = TransE(split.num_entities, split.num_relations, dim=8, rng=rng)
        trainer = NegativeSamplingTrainer(model, split, rng)
        report = trainer.fit(1, eval_every=1, eval_max_queries=10,
                             eval_batch_size=4)
        assert len(report.eval_history) == 1

    def test_evaluate_ranking_batch_size_invariant(self):
        split = random_split(seed=15)
        scorer = RandomScorer(split.num_entities, split.num_relations, seed=15)
        ev = RankingEvaluator(split)
        a = evaluate_ranking(scorer, split, part="test", batch_size=3,
                             evaluator=ev)
        b = evaluate_ranking(scorer, split, part="test", batch_size=64,
                             evaluator=ev)
        assert a.mrr == pytest.approx(b.mrr)
        assert a.mr == pytest.approx(b.mr)


class TestMaskKnown:
    def test_masks_every_known_cell(self):
        split = random_split(seed=21)
        filt = build_csr_filter(split)
        heads = split.test[:6, 0]
        rels = split.test[:6, 1]
        rng = np.random.default_rng(3)
        scores = rng.normal(size=(6, split.num_entities))
        original = scores.copy()
        out = filt.mask_known(scores, heads, rels)
        assert out is scores  # in place
        for row in range(6):
            known = filt.row(int(heads[row]), int(rels[row]))
            assert np.all(scores[row, known] == -np.inf)
            untouched = np.setdiff1d(np.arange(split.num_entities), known)
            np.testing.assert_array_equal(scores[row, untouched],
                                          original[row, untouched])

    def test_keep_spares_one_target_per_row(self):
        split = random_split(seed=22)
        filt = build_csr_filter(split)
        h, r, t = (int(v) for v in split.train[0])
        assert t in filt.row(h, r).tolist()
        scores = np.zeros((1, split.num_entities))
        filt.mask_known(scores, np.array([h]), np.array([r]),
                        keep=np.array([t]))
        assert scores[0, t] == 0.0
        others = np.setdiff1d(filt.row(h, r), [t])
        assert np.all(scores[0, others] == -np.inf)
