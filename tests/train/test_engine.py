"""TrainingEngine construction, shim delegation, and report round-trips."""

import numpy as np
import pytest

from repro.baselines import DistMult, NegativeSamplingTrainer, build_model
from repro.core import OneToNTrainer
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.eval import RankingMetrics
from repro.train import (
    Callback,
    NegativeSamplingObjective,
    OneToNObjective,
    TrainingEngine,
    TrainReport,
)


@pytest.fixture(scope="module")
def mkg():
    return generate_drkg_mm(DRKGConfig().scaled(0.15))


@pytest.fixture(scope="module")
def feats(mkg):
    rng = np.random.default_rng(5)
    return build_features(mkg, rng, d_m=8, d_t=8, d_s=8,
                          gin_epochs=1, compgcn_epochs=1)


def make_engine(mkg, objective, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    model = DistMult(mkg.num_entities, mkg.num_relations, dim=16, rng=rng)
    return model, TrainingEngine(model, mkg.split, rng, objective, **kwargs)


class TestEngineSurface:
    def test_1ton_objective_exposes_batcher_only(self, mkg):
        _, engine = make_engine(mkg, OneToNObjective(batch_size=64))
        assert engine.batcher is engine.objective.batcher
        assert not hasattr(engine, "sampler")
        assert not hasattr(engine, "train_triples")

    def test_neg_objective_exposes_sampler_and_triples(self, mkg):
        _, engine = make_engine(mkg, NegativeSamplingObjective(batch_size=128))
        assert engine.sampler is engine.objective.sampler
        assert engine.train_triples is engine.objective.train_triples
        assert not hasattr(engine, "batcher")

    def test_evaluator_constructed_once(self, mkg):
        _, engine = make_engine(mkg, OneToNObjective(batch_size=64))
        assert engine.evaluator is engine.evaluator

    def test_fit_level_callbacks_receive_hooks(self, mkg):
        calls = []

        class Recorder(Callback):
            def on_fit_start(self, state):
                calls.append("start")

            def on_fit_end(self, state):
                calls.append("end")

        _, engine = make_engine(mkg, OneToNObjective(batch_size=64))
        engine.fit(1, callbacks=[Recorder()])
        assert calls == ["start", "end"]

    def test_engine_level_callbacks_run_every_fit(self, mkg):
        calls = []

        class Recorder(Callback):
            def on_fit_start(self, state):
                calls.append("start")

        _, engine = make_engine(mkg, OneToNObjective(batch_size=64),
                                callbacks=[Recorder()])
        engine.fit(1)
        engine.fit(1)
        assert calls == ["start", "start"]


class TestShimDelegation:
    def test_1ton_trainer_wraps_engine(self, mkg):
        rng = np.random.default_rng(0)
        model = DistMult(mkg.num_entities, mkg.num_relations, dim=16, rng=rng)
        trainer = OneToNTrainer(model, mkg.split, rng, lr=0.01, batch_size=32,
                                grad_clip=3.0)
        assert isinstance(trainer.engine, TrainingEngine)
        assert isinstance(trainer.engine.objective, OneToNObjective)
        assert trainer.model is model
        assert trainer.rng is rng
        assert trainer.grad_clip == 3.0
        assert trainer.optimizer is trainer.engine.optimizer
        assert trainer.batcher is trainer.engine.batcher
        assert trainer.evaluator is trainer.engine.evaluator

    def test_neg_trainer_wraps_engine(self, mkg):
        rng = np.random.default_rng(0)
        model = DistMult(mkg.num_entities, mkg.num_relations, dim=16, rng=rng)
        trainer = NegativeSamplingTrainer(model, mkg.split, rng, batch_size=64,
                                          num_negatives=2,
                                          self_adversarial=True,
                                          adversarial_temperature=0.5)
        objective = trainer.engine.objective
        assert isinstance(objective, NegativeSamplingObjective)
        assert trainer.batch_size == 64
        assert trainer.num_negatives == 2
        assert trainer.self_adversarial is True
        assert trainer.adversarial_temperature == 0.5
        assert trainer.sampler is objective.sampler
        assert trainer.train_triples is objective.train_triples

    def test_build_model_returns_engine(self, mkg, feats):
        rng = np.random.default_rng(0)
        _, engine = build_model("DistMult", mkg, feats, rng, dim=16)
        assert isinstance(engine, TrainingEngine)
        assert isinstance(engine.objective, NegativeSamplingObjective)

        rng = np.random.default_rng(0)
        _, engine = build_model("ConvE", mkg, feats, rng, dim=16)
        assert isinstance(engine.objective, OneToNObjective)

    def test_build_model_self_adversarial_flag(self, mkg, feats):
        rng = np.random.default_rng(0)
        _, engine = build_model("a-RotatE", mkg, feats, rng, dim=16)
        assert engine.objective.self_adversarial is True


class TestTrainReportRoundTrip:
    def sample_report(self):
        metrics = RankingMetrics(mr=12.5, mrr=31.25,
                                 hits={1: 10.0, 3: 25.0, 10: 50.0},
                                 num_queries=40)
        return TrainReport(
            epoch_losses=[0.9, 0.5, 0.30000000000000004],
            epoch_seconds=[0.12, 0.11, 0.13],
            eval_history=[(2, 0.25, metrics), (3, 0.4, metrics)],
            best_metrics=metrics,
            best_state={"w": np.arange(6, dtype=np.float64).reshape(2, 3),
                        "b": np.array([1.5, -2.5])},
        )

    def test_round_trip_without_state(self):
        report = self.sample_report()
        clone = TrainReport.from_dict(report.to_dict())
        assert clone.epoch_losses == report.epoch_losses
        assert clone.epoch_seconds == report.epoch_seconds
        assert len(clone.eval_history) == 2
        for (e0, t0, m0), (e1, t1, m1) in zip(report.eval_history,
                                              clone.eval_history):
            assert (e0, t0) == (e1, t1)
            assert m0.to_dict() == m1.to_dict()
        assert clone.best_metrics.to_dict() == report.best_metrics.to_dict()
        assert clone.best_state is None

    def test_round_trip_with_state_is_exact(self):
        report = self.sample_report()
        clone = TrainReport.from_dict(report.to_dict(include_state=True))
        assert set(clone.best_state) == set(report.best_state)
        for name, arr in report.best_state.items():
            got = clone.best_state[name]
            assert got.dtype == arr.dtype
            assert got.shape == arr.shape
            np.testing.assert_array_equal(got, arr)

    def test_survives_json_serialisation(self):
        import json

        report = self.sample_report()
        payload = json.loads(json.dumps(report.to_dict(include_state=True)))
        clone = TrainReport.from_dict(payload)
        # JSON round-trips floats exactly, so parity is bitwise.
        assert clone.epoch_losses == report.epoch_losses
        np.testing.assert_array_equal(clone.best_state["w"],
                                      report.best_state["w"])

    def test_empty_report_round_trip(self):
        clone = TrainReport.from_dict(TrainReport().to_dict())
        assert clone.epoch_losses == []
        assert clone.eval_history == []
        assert clone.best_metrics is None
        assert np.isnan(clone.final_loss)


class TestRankingMetricsRoundTrip:
    def test_to_from_dict(self):
        metrics = RankingMetrics(mr=3.75, mrr=66.66666666666667,
                                 hits={1: 50.0, 10: 100.0}, num_queries=8)
        clone = RankingMetrics.from_dict(metrics.to_dict())
        assert clone.mr == metrics.mr
        assert clone.mrr == metrics.mrr
        assert clone.hits == metrics.hits
        assert all(isinstance(k, int) for k in clone.hits)
        assert clone.num_queries == metrics.num_queries
