"""Warm-start fine-tuning: frozen backbone, trained new rows, row deltas."""

import copy

import numpy as np
import pytest

from repro.baselines import build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.nn import Parameter
from repro.stream import apply_append_to_model
from repro.train import (
    FrozenRowsAdam,
    WarmStartObjective,
    apply_row_delta,
    entity_row_parameters,
    export_row_delta,
    warm_start,
)


@pytest.fixture(scope="module")
def base():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.12))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    return mkg, feats


def grown(base, name, seed=1):
    """A private model + split with one streamed entity already applied."""
    mkg, feats = copy.deepcopy(base)
    model, _ = build_model(name, mkg, feats, np.random.default_rng(seed), dim=16)
    old = model.num_entities
    body = {"entities": [{"name": "WS::1", "type": "Compound",
                          "description": "warm start probe"}],
            "triples": [["WS::1", 0, 3], [5, 1, "WS::1"]]}
    delta, _ = apply_append_to_model(model, mkg.split, body, features=feats)
    return mkg, model, old, delta


class TestFrozenRowsAdam:
    def test_frozen_rows_never_move(self):
        param = Parameter(np.arange(12, dtype=np.float64).reshape(4, 3))
        opt = FrozenRowsAdam([param], frozen_rows=2, lr=0.1)
        for _ in range(3):
            param.grad = np.ones_like(param.data)
            opt.step()
        np.testing.assert_array_equal(param.data[:2],
                                      np.arange(6).reshape(2, 3))
        assert np.all(param.data[2:] < np.arange(6, 12).reshape(2, 3))

    def test_negative_frozen_rows_rejected(self):
        with pytest.raises(ValueError):
            FrozenRowsAdam([Parameter(np.zeros(2))], frozen_rows=-1)


class TestWarmStart:
    @pytest.mark.parametrize("name", ["TransE", "CamE"])
    def test_backbone_bit_identical_new_rows_move(self, base, name):
        mkg, model, old, delta = grown(base, name)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        new_rows = model.entity_embedding.weight.data[old:].copy()
        report = warm_start(model, mkg.split, delta.triples,
                            old_num_entities=old, epochs=2,
                            rng=np.random.default_rng(7))
        assert len(report.epoch_losses) == 2
        after = model.state_dict()
        row_keys = {n for n, _ in entity_row_parameters(model)}
        for key, value in before.items():
            if key in row_keys:
                np.testing.assert_array_equal(after[key][:old], value[:old],
                                              err_msg=key)
            else:
                np.testing.assert_array_equal(after[key], value, err_msg=key)
        assert not np.array_equal(model.entity_embedding.weight.data[old:],
                                  new_rows)
        assert model.training  # mode restored

    def test_objective_requires_applied_append(self, base):
        mkg, model, old, delta = grown(base, "TransE")
        bogus = np.array([[old + 99, 0, 1]])
        with pytest.raises(ValueError, match="beyond the graph"):
            WarmStartObjective(bogus).prepare(model, mkg.split,
                                              np.random.default_rng(0))
        with pytest.raises(ValueError, match="at least one"):
            WarmStartObjective(np.empty((0, 3))).prepare(
                model, mkg.split, np.random.default_rng(0))


class TestRowDelta:
    def test_export_apply_round_trip(self, base):
        mkg, model, old, delta = grown(base, "CamE")
        warm_start(model, mkg.split, delta.triples, old_num_entities=old,
                   epochs=2, rng=np.random.default_rng(7))
        payload = export_row_delta(model, old)
        assert set(payload["state"]) == {"entity_embedding.weight",
                                         "entity_bias"}
        # Replay onto an identically-grown clone (same seeds, no warm start).
        _, clone, clone_old, _ = grown(base, "CamE")
        assert clone_old == old
        updated = apply_row_delta(clone, payload)
        assert sorted(updated) == sorted(payload["state"])
        np.testing.assert_array_equal(clone.entity_embedding.weight.data,
                                      model.entity_embedding.weight.data)
        np.testing.assert_array_equal(clone.entity_bias.data,
                                      model.entity_bias.data)

    def test_apply_requires_grown_model(self, base):
        mkg, model, old, _ = grown(base, "TransE")
        payload = export_row_delta(model, old)
        fresh_mkg, fresh_feats = copy.deepcopy(base)
        ungrown, _ = build_model("TransE", fresh_mkg, fresh_feats,
                                 np.random.default_rng(1), dim=16)
        with pytest.raises(ValueError, match="stream append"):
            apply_row_delta(ungrown, payload)

    def test_export_range_checked(self, base):
        _, model, old, _ = grown(base, "TransE")
        with pytest.raises(ValueError):
            export_row_delta(model, model.num_entities + 1)
