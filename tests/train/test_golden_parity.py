"""Golden parity: the engine reproduces the pre-refactor loops bit for bit.

``tests/data/golden_train_parity.json`` was captured from the seed
trainers *before* they became shims over :class:`TrainingEngine`.  These
tests replay the exact same seeded runs through the refactored code and
compare losses via ``repr`` (full float precision), metrics via their
exact values, and the best state via per-array SHA-256 — any change in
RNG consumption order or float accumulation fails loudly.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.baselines import NegativeSamplingTrainer
from repro.baselines.conve import ConvE
from repro.baselines.rotate import RotatE
from repro.core import OneToNTrainer
from repro.datasets import DRKGConfig, generate_drkg_mm
from repro.train import NegativeSamplingObjective, OneToNObjective, TrainingEngine

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "..", "data",
                           "golden_train_parity.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def mkg(golden):
    assert golden["dataset"]["generator"] == "generate_drkg_mm"
    return generate_drkg_mm(DRKGConfig().scaled(golden["dataset"]["config_scale"]))


def metrics_dict(m):
    return {"mr": m.mr, "mrr": m.mrr,
            "hits": {str(k): v for k, v in sorted(m.hits.items())},
            "num_queries": m.num_queries}


def state_digest(state):
    return {name: hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()
            for name, arr in sorted(state.items())}


def assert_trace_matches(report, expected):
    assert [repr(x) for x in report.epoch_losses] == expected["epoch_losses"]
    got_evals = [{"epoch": e, "metrics": metrics_dict(m)}
                 for e, _, m in report.eval_history]
    assert got_evals == expected["eval_history"]
    assert metrics_dict(report.best_metrics) == expected["best_metrics"]
    assert state_digest(report.best_state) == expected["best_state_sha256"]


class TestOneToNParity:
    def run_shim(self, mkg, spec):
        rng = np.random.default_rng(spec["seed"])
        model = ConvE(mkg.num_entities, mkg.num_relations, spec["dim"], rng=rng)
        trainer = OneToNTrainer(model, mkg.split, rng, lr=spec["lr"],
                                batch_size=spec["batch_size"])
        return trainer.fit(spec["epochs"], eval_every=spec["eval_every"],
                           eval_max_queries=spec["eval_max_queries"])

    def test_shim_bit_identical(self, mkg, golden):
        assert_trace_matches(self.run_shim(mkg, golden["conve_1ton"]),
                             golden["conve_1ton"]["trace"])

    def test_engine_direct_bit_identical(self, mkg, golden):
        # The same run driven through TrainingEngine directly, no shim.
        spec = golden["conve_1ton"]
        rng = np.random.default_rng(spec["seed"])
        model = ConvE(mkg.num_entities, mkg.num_relations, spec["dim"], rng=rng)
        engine = TrainingEngine(model, mkg.split, rng,
                                OneToNObjective(batch_size=spec["batch_size"]),
                                lr=spec["lr"])
        report = engine.fit(spec["epochs"], eval_every=spec["eval_every"],
                            eval_max_queries=spec["eval_max_queries"])
        assert_trace_matches(report, spec["trace"])


class TestNegativeSamplingParity:
    def run_shim(self, mkg, spec):
        rng = np.random.default_rng(spec["seed"])
        model = RotatE(mkg.num_entities, mkg.num_relations, spec["dim_half"],
                       rng=rng)
        trainer = NegativeSamplingTrainer(model, mkg.split, rng, lr=spec["lr"],
                                          batch_size=spec["batch_size"],
                                          num_negatives=spec["num_negatives"])
        return trainer.fit(spec["epochs"], eval_every=spec["eval_every"],
                           eval_max_queries=spec["eval_max_queries"])

    def test_shim_bit_identical(self, mkg, golden):
        assert_trace_matches(self.run_shim(mkg, golden["rotate_neg"]),
                             golden["rotate_neg"]["trace"])

    def test_engine_direct_bit_identical(self, mkg, golden):
        spec = golden["rotate_neg"]
        rng = np.random.default_rng(spec["seed"])
        model = RotatE(mkg.num_entities, mkg.num_relations, spec["dim_half"],
                       rng=rng)
        engine = TrainingEngine(
            model, mkg.split, rng,
            NegativeSamplingObjective(batch_size=spec["batch_size"],
                                      num_negatives=spec["num_negatives"]),
            lr=spec["lr"])
        report = engine.fit(spec["epochs"], eval_every=spec["eval_every"],
                            eval_max_queries=spec["eval_max_queries"])
        assert_trace_matches(report, spec["trace"])
