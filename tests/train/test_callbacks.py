"""Callback contract: ordering, early stopping, LR schedules, telemetry."""

import dataclasses
import json

import numpy as np
import pytest

from repro.baselines import DistMult
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.eval import RankingMetrics
from repro.experiments import SMOKE
from repro.experiments.runner import RunnerContext, train_model
from repro.serve import load_bundle
from repro.train import (
    BundleExport,
    Callback,
    EarlyStopping,
    JsonlTelemetry,
    LRScheduling,
    MetricsCallback,
    OneToNObjective,
    TrainingEngine,
    read_telemetry,
)


@pytest.fixture(scope="module")
def mkg():
    return generate_drkg_mm(DRKGConfig().scaled(0.15))


def make_engine(mkg, seed=0, lr=0.01):
    rng = np.random.default_rng(seed)
    model = DistMult(mkg.num_entities, mkg.num_relations, dim=16, rng=rng)
    return model, TrainingEngine(model, mkg.split, rng,
                                 OneToNObjective(batch_size=64), lr=lr)


class SequenceRecorder(Callback):
    def __init__(self):
        self.events = []

    def on_fit_start(self, state):
        self.events.append("fit_start")

    def on_epoch_end(self, state):
        self.events.append(f"epoch_end:{state.epoch}")

    def on_eval(self, state):
        self.events.append(f"eval:{state.epoch}")

    def on_fit_end(self, state):
        self.events.append("fit_end")


class FakeEvaluator:
    """Scripted eval metrics: one Hits@10 value consumed per evaluate()."""

    def __init__(self, hits10):
        self.hits10 = list(hits10)
        self.calls = 0

    def evaluate(self, model, **kwargs):
        value = self.hits10[self.calls]
        self.calls += 1
        return RankingMetrics(mr=10.0, mrr=value / 2.0, hits={10: value},
                              num_queries=4)


class TestCallbackOrdering:
    def test_hook_sequence_over_three_epochs(self, mkg):
        recorder = SequenceRecorder()
        _, engine = make_engine(mkg)
        engine.fit(3, eval_every=2, eval_max_queries=10, callbacks=[recorder])
        # eval fires on epochs 2 (cadence) and 3 (final), before epoch_end.
        assert recorder.events == [
            "fit_start",
            "epoch_end:1",
            "eval:2", "epoch_end:2",
            "eval:3", "epoch_end:3",
            "fit_end",
        ]

    def test_no_eval_hooks_without_eval_every(self, mkg):
        recorder = SequenceRecorder()
        _, engine = make_engine(mkg)
        engine.fit(2, callbacks=[recorder])
        assert recorder.events == ["fit_start", "epoch_end:1", "epoch_end:2",
                                   "fit_end"]


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self, mkg):
        model, engine = make_engine(mkg)
        engine._evaluator = FakeEvaluator([50.0, 40.0, 30.0, 20.0, 10.0, 5.0])
        stopper = EarlyStopping(patience=2)
        report = engine.fit(6, eval_every=1, callbacks=[stopper])
        # Evals: 50 (best), 40 (wait=1), 30 (wait=2 -> stop at epoch 3).
        assert stopper.stopped_epoch == 3
        assert len(report.epoch_losses) == 3
        assert len(report.eval_history) == 3

    def test_improvement_resets_patience(self, mkg):
        _, engine = make_engine(mkg)
        engine._evaluator = FakeEvaluator([50.0, 40.0, 60.0, 55.0, 50.0, 45.0])
        stopper = EarlyStopping(patience=2)
        report = engine.fit(6, eval_every=1, callbacks=[stopper])
        # 60 at epoch 3 resets the counter; stop lands on epoch 5.
        assert stopper.stopped_epoch == 5
        assert len(report.epoch_losses) == 5

    def test_best_state_restored_on_early_stop(self, mkg):
        model, engine = make_engine(mkg)
        engine._evaluator = FakeEvaluator([50.0, 40.0, 30.0, 20.0])
        snapshots = {}

        class SnapshotAtBest(Callback):
            def on_eval(self, state):
                if state.metrics.hits[10] == 50.0:
                    snapshots.update({k: v.copy()
                                      for k, v in model.state_dict().items()})

        report = engine.fit(4, eval_every=1,
                            callbacks=[SnapshotAtBest(), EarlyStopping(patience=2)])
        assert report.best_metrics.hits[10] == 50.0
        for name, arr in model.state_dict().items():
            np.testing.assert_array_equal(arr, snapshots[name])

    def test_min_delta_counts_marginal_gains_as_no_improvement(self, mkg):
        _, engine = make_engine(mkg)
        engine._evaluator = FakeEvaluator([50.0, 50.4, 50.8, 51.2])
        stopper = EarlyStopping(patience=2, min_delta=1.0)
        engine.fit(4, eval_every=1, callbacks=[stopper])
        assert stopper.stopped_epoch == 3

    def test_invalid_patience_rejected(self):
        with pytest.raises(ValueError, match="patience"):
            EarlyStopping(patience=0)


class TestLRScheduling:
    def test_step_schedule_halves_lr(self, mkg):
        _, engine = make_engine(mkg, lr=0.01)
        engine.fit(2, callbacks=[LRScheduling.step(1, gamma=0.5)])
        # Epoch 1 ran at 0.01, epoch 2 at 0.005; no restore afterwards.
        assert engine.optimizer.lr == pytest.approx(0.005)

    def test_exponential_schedule(self, mkg):
        _, engine = make_engine(mkg, lr=0.01)
        engine.fit(3, callbacks=[LRScheduling.exponential(gamma=0.5)])
        assert engine.optimizer.lr == pytest.approx(0.01 * 0.5 ** 2)

    def test_lr_visible_in_telemetry_per_epoch(self, mkg, tmp_path):
        path = tmp_path / "run.jsonl"
        _, engine = make_engine(mkg, lr=0.01)
        engine.fit(2, callbacks=[LRScheduling.step(1, gamma=0.5),
                                 JsonlTelemetry(str(path))])
        lrs = [e["lr"] for e in read_telemetry(str(path))
               if e["event"] == "epoch"]
        assert lrs == [pytest.approx(0.005), pytest.approx(0.005)]


class TestJsonlTelemetry:
    def test_event_schema_and_counts(self, mkg, tmp_path):
        path = tmp_path / "run.jsonl"
        _, engine = make_engine(mkg)
        engine.fit(3, eval_every=2, eval_max_queries=10,
                   callbacks=[JsonlTelemetry(str(path), run_id="unit")])
        with open(path, encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        events = [json.loads(line) for line in lines]  # every line parses
        assert [e["event"] for e in events] == \
            ["fit_start", "epoch", "eval", "epoch", "eval", "epoch", "fit_end"]
        assert all("time" in e for e in events)

        start = events[0]
        assert start["run"] == "unit"
        assert start["epochs"] == 3
        assert start["model"] == "DistMult"
        assert start["objective"] == "1toN"
        assert start["resumed"] is False

        epoch = events[1]
        assert epoch["epoch"] == 1
        assert isinstance(epoch["loss"], float)
        assert epoch["seconds"] >= 0
        assert "lr" in epoch

        ev = events[2]
        assert ev["epoch"] == 2
        assert set(ev["metrics"]) == {"mr", "mrr", "hits", "num_queries"}

        end = events[-1]
        assert end["epochs_run"] == 3
        assert end["stopped_early"] is False
        assert end["best_metrics"] is not None

    def test_append_mode_marks_resume(self, mkg, tmp_path):
        path = tmp_path / "run.jsonl"
        _, engine = make_engine(mkg)
        engine.fit(1, callbacks=[JsonlTelemetry(str(path))])
        engine.fit(1, callbacks=[JsonlTelemetry(str(path), append=True)])
        events = read_telemetry(str(path))
        starts = [e for e in events if e["event"] == "fit_start"]
        assert [s["resumed"] for s in starts] == [False, True]

    def test_early_stop_recorded(self, mkg, tmp_path):
        path = tmp_path / "run.jsonl"
        _, engine = make_engine(mkg)
        engine._evaluator = FakeEvaluator([50.0, 40.0, 30.0, 20.0])
        engine.fit(9, eval_every=1,
                   callbacks=[EarlyStopping(patience=2),
                              JsonlTelemetry(str(path))])
        end = read_telemetry(str(path))[-1]
        assert end["event"] == "fit_end"
        assert end["stopped_early"] is True
        assert end["epochs_run"] == 3

    def test_crash_leaves_readable_telemetry(self, mkg, tmp_path):
        path = tmp_path / "run.jsonl"
        _, engine = make_engine(mkg)

        class Bomb(Callback):
            def on_epoch_end(self, state):
                if state.epoch == 2:
                    raise RuntimeError("nan loss")

        telemetry = JsonlTelemetry(str(path), run_id="crash")
        with pytest.raises(RuntimeError, match="nan loss"):
            engine.fit(5, callbacks=[telemetry, Bomb()])
        # handle is closed and every event (including the terminal
        # fit_error) is flushed and parseable
        assert telemetry._fh is None
        events = read_telemetry(str(path))
        assert [e["event"] for e in events] == \
            ["fit_start", "epoch", "epoch", "fit_error"]
        error = events[-1]
        assert error["run"] == "crash"
        assert error["epoch"] == 2
        assert "RuntimeError: nan loss" in error["error"]

    def test_close_is_idempotent_and_context_managed(self, mkg, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTelemetry(str(path)) as telemetry:
            _, engine = make_engine(mkg)
            engine.fit(1, callbacks=[telemetry])
            telemetry.close()
        telemetry.close()  # no error after double close
        assert read_telemetry(str(path))[-1]["event"] == "fit_end"


class TestMetricsCallback:
    def test_registry_tracks_fit_progress(self, mkg):
        _, engine = make_engine(mkg)
        engine._evaluator = FakeEvaluator([40.0, 50.0])
        callback = MetricsCallback()
        report = engine.fit(2, eval_every=1, callbacks=[callback])
        registry = callback.registry
        assert registry.get("train_epochs_total").value == 2
        assert registry.get("train_epoch_seconds").count == 2
        assert registry.get("train_loss").value == pytest.approx(
            report.final_loss)
        assert registry.get("train_eval_mrr").value == pytest.approx(25.0)
        assert registry.get("train_eval_hits").labels(k=10).value == 50.0

    def test_snapshot_written_on_fit_end_and_crash(self, mkg, tmp_path):
        path = tmp_path / "metrics.jsonl"
        _, engine = make_engine(mkg)
        engine.fit(1, callbacks=[MetricsCallback(snapshot_path=str(path))])

        class Bomb(Callback):
            def on_epoch_end(self, state):
                raise RuntimeError("boom")

        _, engine2 = make_engine(mkg)
        with pytest.raises(RuntimeError):
            engine2.fit(3, callbacks=[MetricsCallback(snapshot_path=str(path)),
                                      Bomb()])
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert len(lines) == 2  # one snapshot per run, crash included
        for snap in lines:
            assert snap["type"] == "metrics"
            assert "train_epochs_total" in snap["metrics"]

    def test_shared_registry_coexists_with_serve_metrics(self, mkg):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("serve_queries_total").inc(5)
        _, engine = make_engine(mkg)
        engine.fit(1, callbacks=[MetricsCallback(registry=registry)])
        rendered = registry.render()
        assert "serve_queries_total 5" in rendered
        assert "train_epochs_total 1" in rendered


class TestBundleExport:
    def test_fit_exports_bundle_with_report(self, mkg, tmp_path):
        rng = np.random.default_rng(3)
        feats = build_features(mkg, rng, d_m=8, d_t=8, d_s=8,
                               gin_epochs=1, compgcn_epochs=1)
        model, engine = make_engine(mkg)
        path = tmp_path / "bundle"
        export = BundleExport(str(path), "DistMult", mkg.split, feats, dim=16,
                              extra={"note": "unit"})
        report = engine.fit(2, eval_every=1, eval_max_queries=10,
                            callbacks=[export])
        bundle = load_bundle(str(path))
        assert bundle.model_name == "DistMult"
        assert bundle.manifest["extra"]["note"] == "unit"
        stored = bundle.train_report
        assert stored.epoch_losses == report.epoch_losses
        assert stored.best_metrics.to_dict() == report.best_metrics.to_dict()


class TestRunnerIntegration:
    def test_early_stopping_and_telemetry_end_to_end(self, tmp_path):
        ctx = RunnerContext(telemetry_dir=str(tmp_path / "telemetry"))
        scale = dataclasses.replace(SMOKE, eval_every=1)
        result = train_model("DistMult", "drkg-mm", scale, seed=0,
                             epochs=3, early_stopping=2, context=ctx)
        assert len(result.report.epoch_losses) <= 3
        files = list((tmp_path / "telemetry").glob("*.jsonl"))
        assert len(files) == 1
        assert files[0].name == "drkg-mm_DistMult_smoke_seed0.jsonl"
        events = read_telemetry(str(files[0]))
        assert events[0]["event"] == "fit_start"
        assert events[0]["run"] == "drkg-mm_DistMult_smoke_seed0"
        assert events[-1]["event"] == "fit_end"
        per_epoch = [e for e in events if e["event"] == "epoch"]
        assert len(per_epoch) == len(result.report.epoch_losses)

    def test_custom_callback_runs_are_not_cached(self, tmp_path):
        ctx = RunnerContext()
        recorder = SequenceRecorder()
        train_model("DistMult", "drkg-mm", SMOKE, seed=0, epochs=1,
                    callbacks=[recorder], context=ctx)
        assert not ctx.run_cache
        assert recorder.events[0] == "fit_start"

    def test_cached_rerun_skips_training(self, tmp_path):
        ctx = RunnerContext()
        first = train_model("DistMult", "drkg-mm", SMOKE, seed=0, epochs=1,
                            context=ctx)
        second = train_model("DistMult", "drkg-mm", SMOKE, seed=0, epochs=1,
                             context=ctx)
        assert second is first
