"""OneToNTrainer corner cases beyond the happy path."""

import numpy as np
import pytest

from repro.baselines import DistMult
from repro.core import OneToNTrainer
from repro.datasets import DRKGConfig, generate_drkg_mm


@pytest.fixture(scope="module")
def mkg():
    return generate_drkg_mm(DRKGConfig().scaled(0.15))


def make_trainer(mkg, **kwargs):
    rng = np.random.default_rng(0)
    model = DistMult(mkg.num_entities, mkg.num_relations, dim=16, rng=rng)
    return model, OneToNTrainer(model, mkg.split, rng, lr=0.01,
                                batch_size=64, **kwargs)


class TestFitBehaviour:
    def test_no_eval_when_eval_every_none(self, mkg):
        _, trainer = make_trainer(mkg)
        report = trainer.fit(2)
        assert report.eval_history == []
        assert report.best_metrics is None

    def test_final_epoch_always_evaluated(self, mkg):
        _, trainer = make_trainer(mkg)
        report = trainer.fit(3, eval_every=10, eval_max_queries=10)
        # eval_every > epochs: still one eval at the last epoch.
        assert len(report.eval_history) == 1
        assert report.eval_history[0][0] == 3

    def test_keep_best_false_keeps_final_weights(self, mkg):
        model, trainer = make_trainer(mkg)
        report = trainer.fit(2, eval_every=1, eval_max_queries=10, keep_best=False)
        assert report.best_state is None

    def test_keep_best_restores_checkpoint(self, mkg):
        model, trainer = make_trainer(mkg)
        report = trainer.fit(2, eval_every=1, eval_max_queries=10)
        best = report.best_state
        for name, param in model.named_parameters():
            np.testing.assert_allclose(param.data, best[name])

    def test_report_timing_fields(self, mkg):
        _, trainer = make_trainer(mkg)
        report = trainer.fit(2)
        assert len(report.epoch_seconds) == 2
        assert report.mean_epoch_seconds > 0
        assert np.isfinite(report.final_loss)

    def test_grad_clip_zero_disables(self, mkg):
        _, trainer = make_trainer(mkg, grad_clip=0.0)
        assert np.isfinite(trainer.train_epoch())

    def test_eval_on_test_part(self, mkg):
        _, trainer = make_trainer(mkg)
        report = trainer.fit(1, eval_every=1, eval_part="test", eval_max_queries=10)
        assert report.eval_history[0][2].num_queries > 0


class TestGridSearch:
    def test_grid_search_orders_by_valid_hits(self):
        from repro.experiments import SMOKE, grid_search_came

        points = grid_search_came(SMOKE, {"num_heads": (1, 2)}, epochs=1)
        assert len(points) == 2
        assert points[0].key >= points[1].key
        assert set(points[0].settings) == {"num_heads"}
