"""CamE model: config validation, scoring, ablations, training."""

import numpy as np
import pytest

from repro.core import CamE, CamEConfig, OneToNTrainer, reshape_to_2d_shape
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm


@pytest.fixture(scope="module")
def prepared():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.15))
    feats = build_features(mkg, np.random.default_rng(0), d_m=8, d_t=8, d_s=8,
                           gin_epochs=1, compgcn_epochs=1)
    return mkg, feats


TINY = CamEConfig(entity_dim=16, relation_dim=16, fusion_dim=16,
                  fusion_height=4, fusion_width=4, conv_channels=4)


class TestConfig:
    def test_defaults_valid(self):
        CamEConfig()

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError, match="fusion_dim"):
            CamEConfig(fusion_dim=32, fusion_height=3, fusion_width=5)

    def test_bad_heads_rejected(self):
        with pytest.raises(ValueError):
            CamEConfig(num_heads=0)

    def test_bad_dropout_rejected(self):
        with pytest.raises(ValueError):
            CamEConfig(dropout=1.0)

    def test_variant_replaces(self):
        cfg = CamEConfig().variant(num_heads=3)
        assert cfg.num_heads == 3
        assert CamEConfig().num_heads == 2  # original untouched

    @pytest.mark.parametrize("name,field,value", [
        ("w/o EX", "use_exchange", False),
        ("w/o TCA", "use_tca", False),
        ("w/o MMF", "use_mmf", False),
        ("w/o RIC", "use_ric", False),
        ("w/o TD", "use_text", False),
        ("w/o MS", "use_molecule", False),
    ])
    def test_named_ablations(self, name, field, value):
        cfg = CamEConfig.ablation(name)
        assert getattr(cfg, field) is value

    def test_w_o_m_and_r_disables_both(self):
        cfg = CamEConfig.ablation("w/o M and R")
        assert not cfg.use_mmf and not cfg.use_ric

    def test_unknown_ablation(self):
        with pytest.raises(KeyError):
            CamEConfig.ablation("w/o everything")


class TestReshape2D:
    @pytest.mark.parametrize("length,expected", [
        (64, (8, 8)), (96, (8, 12)), (100, (10, 10)), (7, (1, 7)), (12, (3, 4)),
    ])
    def test_factorisation(self, length, expected):
        h, w = reshape_to_2d_shape(length)
        assert (h, w) == expected
        assert h * w == length


class TestCamEScoring:
    def test_full_scoring_shape(self, prepared):
        mkg, feats = prepared
        model = CamE(mkg.num_entities, mkg.num_relations, feats, TINY,
                     rng=np.random.default_rng(0))
        heads = np.array([0, 1, 2])
        rels = np.array([0, 1, 0])
        scores = model.score_queries(heads, rels)
        assert scores.shape == (3, mkg.num_entities)

    def test_candidate_scores_match_full(self, prepared):
        mkg, feats = prepared
        model = CamE(mkg.num_entities, mkg.num_relations, feats, TINY,
                     rng=np.random.default_rng(0))
        model.eval()  # deterministic (no dropout / BN batch stats)
        heads, rels = np.array([0, 1]), np.array([0, 1])
        candidates = np.array([[3, 4, 5], [0, 2, 9]])
        full = model.score_queries(heads, rels).data
        sub = model.score_queries(heads, rels, candidates).data
        for row in range(2):
            np.testing.assert_allclose(sub[row], full[row, candidates[row]],
                                       atol=1e-10)

    def test_predict_tails_inference_mode(self, prepared):
        mkg, feats = prepared
        model = CamE(mkg.num_entities, mkg.num_relations, feats, TINY,
                     rng=np.random.default_rng(0))
        model.train()
        a = model.predict_tails(np.array([0]), np.array([0]))
        b = model.predict_tails(np.array([0]), np.array([0]))
        np.testing.assert_allclose(a, b)  # deterministic despite dropout config
        assert model.training  # mode restored

    def test_inverse_relations_supported(self, prepared):
        mkg, feats = prepared
        model = CamE(mkg.num_entities, mkg.num_relations, feats, TINY,
                     rng=np.random.default_rng(0))
        inv_rel = np.array([mkg.num_relations])  # first inverse id
        scores = model.predict_tails(np.array([0]), inv_rel)
        assert scores.shape == (1, mkg.num_entities)

    @pytest.mark.parametrize("ablation", ["w/o TCA", "w/o EX", "w/o MMF",
                                          "w/o RIC", "w/o M and R",
                                          "w/o TD", "w/o MS"])
    def test_ablation_variants_forward(self, prepared, ablation):
        mkg, feats = prepared
        cfg = CamEConfig.ablation(ablation, TINY)
        model = CamE(mkg.num_entities, mkg.num_relations, feats, cfg,
                     rng=np.random.default_rng(0))
        scores = model.score_queries(np.array([0, 1]), np.array([0, 0]))
        assert scores.shape == (2, mkg.num_entities)
        assert np.isfinite(scores.data).all()

    def test_dropped_modality_zeroes_table(self, prepared):
        mkg, feats = prepared
        cfg = TINY.variant(use_molecule=False)
        model = CamE(mkg.num_entities, mkg.num_relations, feats, cfg,
                     rng=np.random.default_rng(0))
        np.testing.assert_allclose(model.h_m_table, 0.0)

    def test_gradients_reach_all_parameters(self, prepared):
        mkg, feats = prepared
        model = CamE(mkg.num_entities, mkg.num_relations, feats, TINY,
                     rng=np.random.default_rng(0))
        from repro.nn import functional as F
        scores = model.score_queries(np.array([0, 1, 2, 3]), np.array([0, 1, 2, 0]))
        labels = np.zeros(scores.shape)
        labels[:, 0] = 1.0
        F.bce_with_logits(scores, labels).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no gradient reached: {missing}"


class TestCamETraining:
    def test_loss_decreases(self, prepared):
        mkg, feats = prepared
        rng = np.random.default_rng(1)
        model = CamE(mkg.num_entities, mkg.num_relations, feats, TINY, rng=rng)
        trainer = OneToNTrainer(model, mkg.split, rng, lr=3e-3, batch_size=64)
        first = trainer.train_epoch()
        for _ in range(3):
            last = trainer.train_epoch()
        assert last < first

    def test_fit_reports_history_and_restores_best(self, prepared):
        mkg, feats = prepared
        rng = np.random.default_rng(1)
        model = CamE(mkg.num_entities, mkg.num_relations, feats, TINY, rng=rng)
        trainer = OneToNTrainer(model, mkg.split, rng, lr=3e-3, batch_size=64)
        report = trainer.fit(3, eval_every=1, eval_max_queries=20)
        assert len(report.epoch_losses) == 3
        assert len(report.eval_history) == 3
        assert report.best_metrics is not None
        assert report.best_state is not None

    def test_candidate_sampling_mode(self, prepared):
        mkg, feats = prepared
        rng = np.random.default_rng(1)
        model = CamE(mkg.num_entities, mkg.num_relations, feats, TINY, rng=rng)
        trainer = OneToNTrainer(model, mkg.split, rng, lr=3e-3,
                                batch_size=32, negatives=20)
        loss = trainer.train_epoch()
        assert np.isfinite(loss)
