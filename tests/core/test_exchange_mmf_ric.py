"""Exchanging fusion, MMF and RIC modules."""

import numpy as np

from repro.core import ExchangeFusion, MultimodalTCAFusion, RelationInteractiveTCA, SimpleFusion
from repro.nn import Tensor

RNG = np.random.default_rng(9)


class TestExchangeFusion:
    def test_very_negative_theta_no_exchange(self):
        ex = ExchangeFusion(6, theta=-100.0)
        x, y = Tensor(RNG.normal(size=(3, 6))), Tensor(RNG.normal(size=(3, 6)))
        new_x, new_y = ex(x, y)
        np.testing.assert_allclose(new_x.data, x.data)
        np.testing.assert_allclose(new_y.data, y.data)

    def test_very_positive_theta_full_swap(self):
        ex = ExchangeFusion(6, theta=100.0)
        x, y = Tensor(RNG.normal(size=(3, 6))), Tensor(RNG.normal(size=(3, 6)))
        new_x, new_y = ex(x, y)
        np.testing.assert_allclose(new_x.data, y.data)
        np.testing.assert_allclose(new_y.data, x.data)

    def test_swap_uses_original_values(self):
        """new_y takes values from the ORIGINAL x, not the modified one."""
        ex = ExchangeFusion(4, theta=100.0)
        x = Tensor(np.arange(4.0).reshape(1, 4))
        y = Tensor(np.arange(4.0, 8.0).reshape(1, 4))
        new_x, new_y = ex(x, y)
        np.testing.assert_allclose(new_y.data, x.data)

    def test_exchange_fraction_monotone_in_theta(self):
        x, y = Tensor(RNG.normal(size=(10, 8))), Tensor(RNG.normal(size=(10, 8)))
        frac_low = ExchangeFusion(8, theta=-2.0).exchange_fraction(x, y)[0]
        frac_high = ExchangeFusion(8, theta=0.5).exchange_fraction(x, y)[0]
        assert frac_low < frac_high

    def test_gradients_flow_through_selected(self):
        ex = ExchangeFusion(4, theta=0.0)
        x = Tensor(RNG.normal(size=(2, 4)), requires_grad=True)
        y = Tensor(RNG.normal(size=(2, 4)), requires_grad=True)
        new_x, new_y = ex(x, y)
        (new_x.sum() + new_y.sum()).backward()
        assert x.grad is not None and y.grad is not None


class TestMMF:
    def _inputs(self, b=4, dims=(5, 6, 7)):
        return tuple(Tensor(RNG.normal(size=(b, d))) for d in dims)

    def test_output_shape(self):
        mmf = MultimodalTCAFusion((5, 6, 7), fusion_dim=8, rng=np.random.default_rng(0))
        h_f = mmf(*self._inputs())
        assert h_f.shape == (4, 8)

    def test_without_tca_still_works(self):
        mmf = MultimodalTCAFusion((5, 6, 7), fusion_dim=8, use_tca=False,
                                  rng=np.random.default_rng(0))
        assert mmf(*self._inputs()).shape == (4, 8)

    def test_without_exchange_still_works(self):
        mmf = MultimodalTCAFusion((5, 6, 7), fusion_dim=8, use_exchange=False,
                                  rng=np.random.default_rng(0))
        assert mmf(*self._inputs()).shape == (4, 8)

    def test_ablations_change_output(self):
        full = MultimodalTCAFusion((5, 6, 7), 8, rng=np.random.default_rng(0))
        no_tca = MultimodalTCAFusion((5, 6, 7), 8, use_tca=False,
                                     rng=np.random.default_rng(0))
        inputs = self._inputs()
        assert not np.allclose(full(*inputs).data, no_tca(*inputs).data)

    def test_gradients_reach_all_projections(self):
        mmf = MultimodalTCAFusion((5, 6, 7), 8, rng=np.random.default_rng(0))
        mmf(*self._inputs()).sum().backward()
        for proj in (mmf.w1, mmf.w2, mmf.w3):
            assert proj.weight.grad is not None

    def test_simple_fusion_shape(self):
        fusion = SimpleFusion((5, 6, 7), 8, rng=np.random.default_rng(0))
        assert fusion(*self._inputs()).shape == (4, 8)

    def test_simple_fusion_is_product_of_projections(self):
        fusion = SimpleFusion((4, 4, 4), 4, rng=np.random.default_rng(0))
        h_m, h_t, h_s = self._inputs(b=2, dims=(4, 4, 4))
        out = fusion(h_m, h_t, h_s).data
        expected = (h_m.data @ fusion.w1.weight.data.T) \
            * (h_t.data @ fusion.w2.weight.data.T) \
            * (h_s.data @ fusion.w3.weight.data.T)
        np.testing.assert_allclose(out, expected, atol=1e-12)


class TestRIC:
    def test_outputs_all_modalities(self):
        ric = RelationInteractiveTCA((5, 6, 7), relation_dim=9, fusion_dim=8,
                                     rng=np.random.default_rng(0))
        h_t, h_m, h_s = (Tensor(RNG.normal(size=(3, d))) for d in (6, 5, 7))
        rel = Tensor(RNG.normal(size=(3, 9)))
        out = ric(h_t, h_m, h_s, rel)
        assert set(out) == {"t", "m", "s"}
        for v in out.values():
            assert v.shape == (3, 16)  # 2 * fusion_dim

    def test_without_tca_concatenates_projections(self):
        ric = RelationInteractiveTCA((4, 4, 4), relation_dim=4, fusion_dim=4,
                                     use_tca=False, rng=np.random.default_rng(0))
        h = Tensor(RNG.normal(size=(2, 4)))
        rel = Tensor(RNG.normal(size=(2, 4)))
        out = ric(h, h, h, rel)
        expected_rel = rel.data @ ric.proj_r.weight.data.T
        np.testing.assert_allclose(out["t"].data[:, 4:], expected_rel, atol=1e-12)

    def test_relation_changes_interactive_representation(self):
        ric = RelationInteractiveTCA((4, 4, 4), relation_dim=4, fusion_dim=4,
                                     rng=np.random.default_rng(0))
        h = Tensor(RNG.normal(size=(2, 4)))
        out1 = ric(h, h, h, Tensor(RNG.normal(size=(2, 4))))
        out2 = ric(h, h, h, Tensor(RNG.normal(size=(2, 4))))
        assert not np.allclose(out1["t"].data, out2["t"].data)
