"""TCA operator: shapes, attention structure, temperatures, gradients."""

import numpy as np
import pytest

from repro.core import TCAHead, TCAOperator
from repro.nn import Tensor


RNG = np.random.default_rng(5)


class TestTCAHead:
    def test_output_shapes_match_inputs(self):
        head = TCAHead(8, np.random.default_rng(0))
        q, d = Tensor(RNG.normal(size=(3, 8))), Tensor(RNG.normal(size=(3, 8)))
        out_q, out_d = head(q, d, Tensor(np.array([1.0])))
        assert out_q.shape == (3, 8)
        assert out_d.shape == (3, 8)

    def test_shared_co_projection(self):
        """W_co is used by both the co- and intra-affinity matrices."""
        head = TCAHead(4, np.random.default_rng(0))
        q = Tensor(RNG.normal(size=(2, 4)), requires_grad=False)
        d = Tensor(RNG.normal(size=(2, 4)))
        out_q, out_d = head(q, d, Tensor(np.array([1.0])))
        (out_q.sum() + out_d.sum()).backward()
        # The shared projection receives gradient from both paths.
        assert head.w_co_q.weight.grad is not None
        assert head.w_in_q.weight.grad is not None

    def test_temperature_changes_output(self):
        head = TCAHead(6, np.random.default_rng(0))
        q, d = Tensor(RNG.normal(size=(2, 6))), Tensor(RNG.normal(size=(2, 6)))
        cold, _ = head(q, d, Tensor(np.array([0.1])))
        hot, _ = head(q, d, Tensor(np.array([10.0])))
        assert not np.allclose(cold.data, hot.data)


class TestTCAOperator:
    def test_multihead_output_shape(self):
        op = TCAOperator(8, num_heads=3, rng=np.random.default_rng(0))
        q, d = Tensor(RNG.normal(size=(4, 8))), Tensor(RNG.normal(size=(4, 8)))
        out_q, out_d = op(q, d)
        assert out_q.shape == (4, 8) and out_d.shape == (4, 8)

    def test_single_head(self):
        op = TCAOperator(8, num_heads=1, rng=np.random.default_rng(0))
        out_q, out_d = op(Tensor(RNG.normal(size=(2, 8))), Tensor(RNG.normal(size=(2, 8))))
        assert out_q.shape == (2, 8)

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            TCAOperator(8, num_heads=0)

    def test_dim_mismatch_raises(self):
        op = TCAOperator(8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="dim"):
            op(Tensor(np.zeros((2, 8))), Tensor(np.zeros((2, 4))))

    def test_temperature_sequence_fixed_interval(self):
        op = TCAOperator(4, num_heads=3, interval=5.0, temperature_init=2.0,
                         rng=np.random.default_rng(0))
        taus = [float(t.data.reshape(-1)[0]) for t in op.head_temperatures()]
        # tau_i = tau0 * (lambda * i): 2*5, 2*10, 2*15 (plus epsilon).
        np.testing.assert_allclose(taus, [10.0, 20.0, 30.0], atol=0.01)

    def test_temperature_is_learnable(self):
        op = TCAOperator(4, num_heads=2, rng=np.random.default_rng(0))
        names = {n for n, _ in op.named_parameters()}
        assert "tau0" in names
        q, d = Tensor(RNG.normal(size=(2, 4))), Tensor(RNG.normal(size=(2, 4)))
        out_q, out_d = op(q, d)
        (out_q.sum() + out_d.sum()).backward()
        assert op.tau0.grad is not None

    def test_temperature_clamped_positive(self):
        op = TCAOperator(4, num_heads=1, temperature_init=-3.0,
                         rng=np.random.default_rng(0))
        assert float(op.head_temperatures()[0].data.reshape(-1)[0]) > 0

    def test_gradients_flow_to_inputs(self):
        op = TCAOperator(6, num_heads=2, rng=np.random.default_rng(0))
        q = Tensor(RNG.normal(size=(3, 6)), requires_grad=True)
        d = Tensor(RNG.normal(size=(3, 6)), requires_grad=True)
        out_q, out_d = op(q, d)
        (out_q.sum() + out_d.sum()).backward()
        assert q.grad is not None and d.grad is not None

    def test_numeric_gradient_small(self):
        """Full operator passes a finite-difference check end to end."""
        from repro.nn.gradcheck import check_gradients
        op = TCAOperator(3, num_heads=1, rng=np.random.default_rng(0))

        def fn(q, d):
            out_q, out_d = op(q, d)
            return out_q.sum() + out_d.sum()

        check_gradients(fn, [RNG.normal(size=(2, 3)), RNG.normal(size=(2, 3))],
                        atol=1e-4, rtol=1e-3)

    def test_batch_independence(self):
        """Each row's output depends only on that row's inputs."""
        op = TCAOperator(4, num_heads=2, rng=np.random.default_rng(0))
        q = RNG.normal(size=(3, 4))
        d = RNG.normal(size=(3, 4))
        full_q, _ = op(Tensor(q), Tensor(d))
        solo_q, _ = op(Tensor(q[:1]), Tensor(d[:1]))
        np.testing.assert_allclose(full_q.data[0], solo_q.data[0], atol=1e-12)
