"""Modality feature pipeline."""

import numpy as np
import pytest

from repro.datasets import build_features, generate_drkg_mm, generate_omaha_mm
from repro.datasets import DRKGConfig, OMAHAConfig


@pytest.fixture(scope="module")
def drkg():
    return generate_drkg_mm(DRKGConfig().scaled(0.15))


@pytest.fixture(scope="module")
def feats(drkg):
    return build_features(drkg, np.random.default_rng(0), d_m=8, d_t=8, d_s=8,
                          gin_epochs=1, compgcn_epochs=1)


class TestBuildFeatures:
    def test_dims(self, drkg, feats):
        assert feats.dims == (8, 8, 8)
        assert feats.molecular.shape == (drkg.num_entities, 8)

    def test_has_molecule_mask_matches_compounds(self, drkg, feats):
        compounds = set(drkg.entities_of_type("Compound").tolist())
        assert set(np.where(feats.has_molecule)[0].tolist()) == compounds

    def test_missing_molecules_are_zero(self, drkg, feats):
        non = ~feats.has_molecule
        np.testing.assert_allclose(feats.molecular[non], 0.0)

    def test_present_features_standardised(self, feats):
        present = feats.molecular[feats.has_molecule]
        np.testing.assert_allclose(present.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(present.std(axis=0), 1.0, atol=1e-6)

    def test_textual_standardised(self, feats):
        np.testing.assert_allclose(feats.textual.mean(axis=0), 0.0, atol=1e-8)

    def test_charcnn_encoder_option(self, drkg):
        out = build_features(drkg, np.random.default_rng(0), d_m=4, d_t=4, d_s=4,
                             text_encoder="charcnn", gin_epochs=1,
                             text_epochs=1, compgcn_epochs=1)
        assert out.textual.shape == (drkg.num_entities, 4)

    def test_unknown_encoder_raises(self, drkg):
        with pytest.raises(ValueError):
            build_features(drkg, np.random.default_rng(0), text_encoder="word2vec")

    def test_omaha_has_all_zero_molecular(self):
        omaha = generate_omaha_mm(OMAHAConfig().scaled(0.15))
        out = build_features(omaha, np.random.default_rng(0), d_m=4, d_t=4, d_s=4,
                             gin_epochs=1, compgcn_epochs=1)
        np.testing.assert_allclose(out.molecular, 0.0)
        assert not out.has_molecule.any()


class TestDropModality:
    def test_drop_textual(self, feats):
        dropped = feats.drop_modality("textual")
        np.testing.assert_allclose(dropped.textual, 0.0)
        assert dropped.molecular is feats.molecular

    def test_drop_molecular_clears_mask(self, feats):
        dropped = feats.drop_modality("molecular")
        np.testing.assert_allclose(dropped.molecular, 0.0)
        assert not dropped.has_molecule.any()

    def test_drop_unknown_raises(self, feats):
        with pytest.raises(ValueError):
            feats.drop_modality("audio")

    def test_original_untouched(self, feats):
        feats.drop_modality("textual")
        assert np.abs(feats.textual).sum() > 0
