"""Synthetic dataset generators: schema, determinism, multimodal wiring."""

import numpy as np
import pytest

from repro.datasets import (
    DRKGConfig,
    OMAHAConfig,
    clear_cache,
    dataset_names,
    generate_drkg_mm,
    generate_omaha_mm,
    get_dataset,
)

SMALL_DRKG = DRKGConfig().scaled(0.2)
SMALL_OMAHA = OMAHAConfig().scaled(0.2)


@pytest.fixture(scope="module")
def drkg():
    return generate_drkg_mm(SMALL_DRKG)


@pytest.fixture(scope="module")
def omaha():
    return generate_omaha_mm(SMALL_OMAHA)


class TestDRKG:
    def test_entity_types_present(self, drkg):
        counts = drkg.graph.type_counts()
        assert set(counts) == {"Compound", "Gene", "Disease", "Side-Effect"}

    def test_every_compound_has_molecule(self, drkg):
        for c in drkg.entities_of_type("Compound"):
            assert int(c) in drkg.molecules
            assert drkg.molecules[int(c)].is_connected()

    def test_non_compounds_have_no_molecule(self, drkg):
        for g in drkg.entities_of_type("Gene"):
            assert int(g) not in drkg.molecules

    def test_every_entity_has_description(self, drkg):
        for i in range(drkg.num_entities):
            assert drkg.descriptions[i]

    def test_drug_names_carry_scaffold_affix(self, drkg):
        from repro.mol import scaffold_by_name
        for c in drkg.entities_of_type("Compound")[:20]:
            scaffold = scaffold_by_name(drkg.scaffold_of[int(c)])
            name = drkg.entity_name(int(c)).lower()
            kind, affix = scaffold.affix
            if kind == "suffix":
                assert name.endswith(affix.lower())
            else:
                assert name.startswith(affix.lower())

    def test_molecule_scaffold_matches_metadata(self, drkg):
        for c in drkg.entities_of_type("Compound")[:20]:
            assert drkg.molecules[int(c)].scaffold == drkg.scaffold_of[int(c)]

    def test_relation_families_cover_table5(self, drkg):
        families = set(drkg.graph.family_triple_counts())
        assert {"Gene-Gene", "Compound-Compound", "Compound-Gene",
                "Compound-Disease", "Disease-Gene"} <= families

    def test_deterministic(self):
        a = generate_drkg_mm(SMALL_DRKG)
        b = generate_drkg_mm(SMALL_DRKG)
        np.testing.assert_array_equal(a.graph.triples, b.graph.triples)
        assert a.graph.entities.names() == b.graph.entities.names()

    def test_different_seed_differs(self):
        cfg = DRKGConfig(seed=99).scaled(0.2)
        other = generate_drkg_mm(cfg)
        base = generate_drkg_mm(SMALL_DRKG)
        assert other.graph.entities.names() != base.graph.entities.names()

    def test_long_tail_degrees(self, drkg):
        degrees = drkg.graph.entity_degrees()
        # Hubs should hold far more than their share.
        assert degrees.max() > 2 * np.median(degrees)

    def test_no_self_loops(self, drkg):
        assert (drkg.graph.triples[:, 0] != drkg.graph.triples[:, 2]).all()

    def test_split_ratio(self, drkg):
        s = drkg.split.summary()
        total = s["#Train"] + s["#Valid"] + s["#Test"]
        assert s["#Train"] / total >= 0.78


class TestOMAHA:
    def test_entity_types(self, omaha):
        assert set(omaha.graph.type_counts()) == {
            "Disease", "Symptom", "Gene", "GeneMutation", "Drug"}

    def test_no_molecules(self, omaha):
        assert not omaha.has_molecules

    def test_seventeen_relations(self, omaha):
        assert omaha.num_relations == 17

    def test_sparser_than_drkg(self, drkg, omaha):
        drkg_density = drkg.graph.num_triples / drkg.num_entities
        omaha_density = omaha.graph.num_triples / omaha.num_entities
        assert omaha_density < drkg_density

    def test_descriptions_everywhere(self, omaha):
        assert all(omaha.descriptions[i] for i in range(omaha.num_entities))

    def test_deterministic(self):
        a = generate_omaha_mm(SMALL_OMAHA)
        b = generate_omaha_mm(SMALL_OMAHA)
        np.testing.assert_array_equal(a.graph.triples, b.graph.triples)


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["drkg-mm", "omaha-mm"]

    def test_caching_returns_same_object(self):
        clear_cache()
        a = get_dataset("drkg-mm", scale=0.15)
        b = get_dataset("drkg-mm", scale=0.15)
        assert a is b

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_dataset("freebase")

    def test_scale_changes_size(self):
        clear_cache()
        small = get_dataset("drkg-mm", scale=0.15)
        big = get_dataset("drkg-mm", scale=0.3)
        assert big.num_entities > small.num_entities
        clear_cache()


class TestMultimodalKGHelpers:
    def test_entity_text_combines_name_and_description(self, drkg):
        text = drkg.entity_text(0)
        assert drkg.entity_name(0) in text
        assert drkg.descriptions[0] in text

    def test_entities_of_type_ids_valid(self, drkg):
        ids = drkg.entities_of_type("Gene")
        assert all(drkg.graph.entity_types[i] == "Gene" for i in ids)
