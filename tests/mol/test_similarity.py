"""Molecular similarity measures."""

import numpy as np
import pytest

from repro.mol import (
    MoleculeGenerator,
    cosine_similarity,
    inner_product_similarity,
    pairwise_cosine,
    tanimoto,
)


class TestTanimoto:
    def test_self_similarity_is_one(self):
        mol = MoleculeGenerator(np.random.default_rng(0)).generate_random()
        assert tanimoto(mol, mol) == pytest.approx(1.0)

    def test_symmetric(self):
        gen = MoleculeGenerator(np.random.default_rng(1))
        a, b = gen.generate_random(), gen.generate_random()
        assert tanimoto(a, b) == pytest.approx(tanimoto(b, a))

    def test_bounded(self):
        gen = MoleculeGenerator(np.random.default_rng(2))
        for _ in range(5):
            v = tanimoto(gen.generate_random(), gen.generate_random())
            assert 0.0 <= v <= 1.0


class TestVectorSimilarities:
    def test_inner_product(self):
        assert inner_product_similarity(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == 11.0

    def test_cosine_bounds(self):
        a = np.array([1.0, 0.0])
        assert cosine_similarity(a, a) == pytest.approx(1.0)
        assert cosine_similarity(a, -a) == pytest.approx(-1.0)
        assert cosine_similarity(a, np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_cosine_zero_vector_safe(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_pairwise_matches_pairwise_calls(self):
        emb = np.random.default_rng(0).normal(size=(4, 5))
        matrix = pairwise_cosine(emb)
        assert matrix.shape == (4, 4)
        np.testing.assert_allclose(np.diag(matrix), np.ones(4), atol=1e-9)
        assert matrix[0, 1] == pytest.approx(cosine_similarity(emb[0], emb[1]), abs=1e-9)
        np.testing.assert_allclose(matrix, matrix.T)
