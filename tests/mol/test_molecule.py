"""Molecular graph representation and fingerprints."""

import numpy as np
import pytest

from repro.mol import Atom, Bond, ELEMENTS, Molecule


def ethanol() -> Molecule:
    # C-C-O
    return Molecule(atoms=[Atom("C"), Atom("C"), Atom("O")],
                    bonds=[Bond(0, 1), Bond(1, 2)])


class TestAtomBond:
    def test_unknown_element_rejected(self):
        with pytest.raises(ValueError):
            Atom("Xx")

    def test_element_id(self):
        assert Atom("C").element_id == ELEMENTS.index("C")

    def test_self_bond_rejected(self):
        with pytest.raises(ValueError):
            Bond(1, 1)

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            Bond(0, 1, order="quadruple")

    def test_normalized_orders_indices(self):
        b = Bond(3, 1).normalized()
        assert (b.i, b.j) == (1, 3)


class TestMolecule:
    def test_counts(self):
        m = ethanol()
        assert m.num_atoms == 3 and m.num_bonds == 2

    def test_bond_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Molecule(atoms=[Atom("C")], bonds=[Bond(0, 5)])

    def test_duplicate_bond_rejected(self):
        with pytest.raises(ValueError):
            Molecule(atoms=[Atom("C"), Atom("C")],
                     bonds=[Bond(0, 1), Bond(1, 0)])

    def test_adjacency_symmetric(self):
        adj = ethanol().adjacency()
        assert (1, 0) in adj[0] and (0, 0) in adj[1]

    def test_degrees(self):
        np.testing.assert_array_equal(ethanol().degrees(), [1, 2, 1])

    def test_element_counts(self):
        assert ethanol().element_counts() == {"C": 2, "O": 1}

    def test_to_networkx(self):
        g = ethanol().to_networkx()
        assert g.number_of_nodes() == 3
        assert g.nodes[2]["element"] == "O"

    def test_is_connected(self):
        assert ethanol().is_connected()
        disconnected = Molecule(atoms=[Atom("C"), Atom("C")], bonds=[])
        assert not disconnected.is_connected()

    def test_single_atom_connected(self):
        assert Molecule(atoms=[Atom("C")], bonds=[]).is_connected()


class TestFingerprint:
    def test_deterministic(self):
        m = ethanol()
        np.testing.assert_array_equal(m.fingerprint(), m.fingerprint())

    def test_isomorphic_molecules_same_fingerprint(self):
        a = ethanol()
        # Same graph with atom order permuted.
        b = Molecule(atoms=[Atom("O"), Atom("C"), Atom("C")],
                     bonds=[Bond(0, 1), Bond(1, 2)])
        np.testing.assert_array_equal(a.fingerprint(), b.fingerprint())

    def test_different_molecules_differ(self):
        a = ethanol()
        b = Molecule(atoms=[Atom("C"), Atom("N"), Atom("O")],
                     bonds=[Bond(0, 1), Bond(1, 2)])
        assert not np.array_equal(a.fingerprint(), b.fingerprint())

    def test_counts_nonnegative_and_sized(self):
        fp = ethanol().fingerprint(n_bits=64)
        assert fp.shape == (64,)
        assert (fp >= 0).all()


class TestFeaturisation:
    def test_node_features_shape_and_onehot(self):
        feats = ethanol().node_features()
        assert feats.shape == (3, len(ELEMENTS) + 7)
        np.testing.assert_allclose(feats.sum(axis=1), np.full(3, 2.0))  # element + degree

    def test_edge_index_both_directions(self):
        edges = ethanol().edge_index()
        assert edges.shape == (2, 4)
        pairs = set(map(tuple, edges.T))
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_edge_index_empty(self):
        m = Molecule(atoms=[Atom("C")], bonds=[])
        assert m.edge_index().shape == (2, 0)


class TestCaching:
    def test_degrees_cached(self):
        m = ethanol()
        assert m.degrees() is m.degrees()

    def test_edge_index_cached(self):
        m = ethanol()
        assert m.edge_index() is m.edge_index()

    def test_bond_arrays_cached(self):
        m = ethanol()
        assert m.bond_arrays()[0] is m.bond_arrays()[0]

    def test_node_features_cached_per_max_degree(self):
        m = ethanol()
        assert m.node_features() is m.node_features()
        wider = m.node_features(max_degree=3)
        assert wider is not m.node_features()
        assert wider.shape == (3, len(ELEMENTS) + 4)
        # The default-width cache entry is untouched by the second width.
        assert m.node_features().shape == (3, len(ELEMENTS) + 7)

    def test_fingerprint_cached_copy_is_safe(self):
        m = ethanol()
        fp = m.fingerprint()
        fp[0] += 100.0  # mutating the returned copy must not poison the cache
        np.testing.assert_array_equal(m.fingerprint(), ethanol().fingerprint())

    def test_to_graph_cached_per_max_degree(self):
        m = ethanol()
        g = m.to_graph()
        assert g is m.to_graph()
        assert m.to_graph(max_degree=3) is not g
        assert g.num_nodes == 3 and g.num_edges == 4
        np.testing.assert_array_equal(g.node_feat["x"], m.node_features())
        np.testing.assert_array_equal(g.edge_index, m.edge_index())
