"""Molecule generation, scaffolds, GIN encoding and pre-training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mol import (
    SCAFFOLDS,
    GINEncoder,
    MaskedAttributePretrainer,
    MoleculeGenerator,
    batch_molecules,
    scaffold_by_name,
    tanimoto,
)
from repro.mol.scaffolds import core_molecule_parts


class TestScaffolds:
    def test_registry_complete(self):
        assert len(SCAFFOLDS) == 10
        names = {s.name for s in SCAFFOLDS}
        assert "beta_lactam" in names and "statin" in names

    def test_lookup(self):
        assert scaffold_by_name("sulfonamide").affix == ("prefix", "Sulfa")

    def test_unknown_scaffold_raises(self):
        with pytest.raises(KeyError):
            scaffold_by_name("unobtainium")

    def test_affixed_name(self):
        bl = scaffold_by_name("beta_lactam")
        assert bl.affixed_name("Amoxi") == "Amoxicillin"
        sa = scaffold_by_name("sulfonamide")
        assert sa.affixed_name("Methoxazole") == "Sulfamethoxazole"

    @pytest.mark.parametrize("scaffold", SCAFFOLDS, ids=lambda s: s.name)
    def test_cores_are_valid_molecules(self, scaffold):
        atoms, bonds = core_molecule_parts(scaffold)
        from repro.mol import Molecule
        mol = Molecule(atoms=atoms, bonds=bonds)
        assert mol.is_connected()

    def test_gene_families_in_range(self):
        from repro.text.lexicon import GENE_FAMILIES, DISEASE_FAMILIES
        for s in SCAFFOLDS:
            assert all(0 <= f < len(GENE_FAMILIES) for f in s.target_gene_families)
            assert all(0 <= f < len(DISEASE_FAMILIES) for f in s.treated_disease_families)


class TestGenerator:
    def test_generated_molecules_connected(self):
        gen = MoleculeGenerator(np.random.default_rng(0))
        for _ in range(20):
            assert gen.generate_random().is_connected()

    def test_scaffold_recorded(self):
        gen = MoleculeGenerator(np.random.default_rng(0))
        mol = gen.generate(scaffold_by_name("statin"))
        assert mol.scaffold == "statin"

    def test_batch_size(self):
        gen = MoleculeGenerator(np.random.default_rng(0))
        assert len(gen.generate_batch(SCAFFOLDS[0], 5)) == 5

    def test_invalid_decoration_range(self):
        with pytest.raises(ValueError):
            MoleculeGenerator(np.random.default_rng(0), min_decorations=5, max_decorations=2)

    def test_deterministic_given_rng(self):
        a = MoleculeGenerator(np.random.default_rng(7)).generate_random()
        b = MoleculeGenerator(np.random.default_rng(7)).generate_random()
        assert a.scaffold == b.scaffold and a.num_atoms == b.num_atoms

    def test_same_scaffold_more_similar_than_cross(self):
        gen = MoleculeGenerator(np.random.default_rng(1))
        bl = gen.generate_batch(scaffold_by_name("beta_lactam"), 8)
        st_ = gen.generate_batch(scaffold_by_name("statin"), 8)
        same = np.mean([tanimoto(bl[i], bl[j]) for i in range(8) for j in range(i + 1, 8)])
        cross = np.mean([tanimoto(a, b) for a in bl for b in st_])
        assert same > cross

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_connectivity_property(self, seed):
        gen = MoleculeGenerator(np.random.default_rng(seed))
        assert gen.generate_random().is_connected()


class TestGIN:
    def test_batching_offsets(self):
        gen = MoleculeGenerator(np.random.default_rng(0))
        mols = [gen.generate_random() for _ in range(3)]
        x, edges, batch = batch_molecules(mols)
        assert x.shape[0] == sum(m.num_atoms for m in mols)
        assert batch.max() == 2
        assert edges.max() < x.shape[0]

    def test_empty_batch(self):
        x, edges, batch = batch_molecules([])
        assert x.shape[0] == 0 and edges.shape == (2, 0)

    def test_encoder_output_shape(self):
        gen = MoleculeGenerator(np.random.default_rng(0))
        mols = [gen.generate_random() for _ in range(4)]
        enc = GINEncoder(hidden_dim=8, num_layers=2, rng=np.random.default_rng(0))
        emb = enc.encode(mols)
        assert emb.shape == (4, 8)

    def test_encoder_permutation_invariant(self):
        gen = MoleculeGenerator(np.random.default_rng(0))
        mols = [gen.generate_random() for _ in range(3)]
        enc = GINEncoder(hidden_dim=8, num_layers=2, rng=np.random.default_rng(0))
        emb_a = enc.encode(mols)
        emb_b = enc.encode(mols[::-1])
        np.testing.assert_allclose(emb_a, emb_b[::-1], atol=1e-10)

    def test_pretraining_improves_mask_accuracy(self):
        rng = np.random.default_rng(2)
        gen = MoleculeGenerator(rng)
        mols = [gen.generate_random() for _ in range(40)]
        enc = GINEncoder(hidden_dim=16, num_layers=2, rng=rng)
        pre = MaskedAttributePretrainer(enc, rng, lr=0.02)
        result = pre.train(mols, epochs=4, batch_size=20)
        assert result.final_accuracy > result.accuracies[0]
        assert result.final_loss < result.losses[0]

    def test_invalid_mask_rate(self):
        enc = GINEncoder(hidden_dim=4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            MaskedAttributePretrainer(enc, np.random.default_rng(0), mask_rate=1.5)

    def test_gradients_flow_through_encoder(self):
        gen = MoleculeGenerator(np.random.default_rng(0))
        mols = [gen.generate_random() for _ in range(2)]
        enc = GINEncoder(hidden_dim=8, num_layers=1, rng=np.random.default_rng(0))
        out = enc(mols)
        out.sum().backward()
        assert all(p.grad is not None for p in enc.parameters())
