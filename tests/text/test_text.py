"""Text substrate: vocab, lexicon, encoders, masked pre-training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    CharCNNEncoder,
    CharVocab,
    MaskedCharPretrainer,
    NgramHashEncoder,
    disease_name,
    drug_stem,
    gene_symbol,
)


class TestCharVocab:
    def test_pad_unk_mask_reserved(self):
        v = CharVocab()
        assert (v.PAD, v.UNK, v.MASK) == (0, 1, 2)

    def test_encode_pads_to_max_len(self):
        v = CharVocab(max_len=10)
        ids = v.encode("abc")
        assert ids.shape == (10,)
        assert (ids[3:] == v.PAD).all()

    def test_encode_truncates(self):
        v = CharVocab(max_len=4)
        assert v.encode("abcdefgh").shape == (4,)

    def test_unknown_char_maps_to_unk(self):
        v = CharVocab(max_len=5)
        assert v.encode("a@b")[1] == v.UNK

    def test_lowercases(self):
        v = CharVocab(max_len=5)
        np.testing.assert_array_equal(v.encode("ABC"), v.encode("abc"))

    def test_decode_roundtrip(self):
        v = CharVocab(max_len=20)
        assert v.decode(v.encode("amoxicillin")) == "amoxicillin"

    def test_encode_batch_shape(self):
        v = CharVocab(max_len=8)
        assert v.encode_batch(["a", "bb", "ccc"]).shape == (3, 8)

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="abcdefghij -.", min_size=0, max_size=20))
    def test_roundtrip_property(self, text):
        v = CharVocab(max_len=32)
        assert v.decode(v.encode(text)) == text.lower()


class TestLexicon:
    def test_drug_stem_capitalised_pronounceable(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            stem = drug_stem(rng)
            assert stem[0].isupper() and stem[1:].islower()
            assert 3 <= len(stem) <= 12

    def test_gene_symbol_family_prefix(self):
        rng = np.random.default_rng(0)
        assert gene_symbol(0, rng).startswith("PBP")
        assert gene_symbol(3, rng).startswith("ADR")

    def test_disease_name_suffix_by_family(self):
        rng = np.random.default_rng(0)
        name = disease_name(0, rng)
        assert any(name.endswith(suffix) for suffix in ("itis", "osis", "emia"))


class TestNgramHashEncoder:
    def test_shape_and_determinism(self):
        enc = NgramHashEncoder(dim=16)
        a = enc.encode(["amoxicillin", "oxacillin"])
        b = enc.encode(["amoxicillin", "oxacillin"])
        assert a.shape == (2, 16)
        np.testing.assert_array_equal(a, b)

    def test_empty_input(self):
        assert NgramHashEncoder(dim=8).encode([]).shape == (0, 8)

    def test_shared_suffix_closer_than_disjoint(self):
        enc = NgramHashEncoder(dim=32)
        e = enc.encode(["amoxicillin", "oxacillin", "lovastatin"])
        def cos(u, v):
            return float(u @ v / (np.linalg.norm(u) * np.linalg.norm(v) + 1e-12))
        assert cos(e[0], e[1]) > cos(e[0], e[2])

    def test_case_insensitive(self):
        enc = NgramHashEncoder(dim=16)
        a = enc.encode(["Aspirin"])
        b = enc.encode(["aspirin"])
        np.testing.assert_allclose(a, b)


class TestCharCNN:
    def test_encode_shape(self):
        vocab = CharVocab(max_len=24)
        enc = CharCNNEncoder(vocab, dim=12, rng=np.random.default_rng(0))
        out = enc.encode(["amoxicillin", "statin"])
        assert out.shape == (2, 12)

    def test_forward_gradients_flow(self):
        vocab = CharVocab(max_len=16)
        enc = CharCNNEncoder(vocab, dim=8, rng=np.random.default_rng(0))
        out = enc(vocab.encode_batch(["abc", "def"]))
        out.sum().backward()
        assert enc.char_embedding.weight.grad is not None

    def test_pretraining_improves(self):
        rng = np.random.default_rng(3)
        names = [drug_stem(rng) + "cillin" for _ in range(20)] \
            + [drug_stem(rng) + "statin" for _ in range(20)]
        vocab = CharVocab(max_len=24)
        enc = CharCNNEncoder(vocab, dim=12, rng=rng)
        pre = MaskedCharPretrainer(enc, rng, lr=0.02)
        result = pre.train(names, epochs=4, batch_size=16)
        assert result.final_loss < result.losses[0]

    def test_invalid_mask_rate(self):
        vocab = CharVocab()
        enc = CharCNNEncoder(vocab, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            MaskedCharPretrainer(enc, np.random.default_rng(0), mask_rate=0.0)

    def test_empty_input(self):
        vocab = CharVocab()
        enc = CharCNNEncoder(vocab, dim=8, rng=np.random.default_rng(0))
        assert enc.encode([]).shape == (0, 8)
