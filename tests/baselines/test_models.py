"""Every baseline model: scoring consistency, shapes, gradients."""

import numpy as np
import pytest

from repro.baselines import (
    ComplEx,
    CompGCNLinkPredictor,
    ConvE,
    DistMult,
    DualE,
    IKRL,
    MKGformer,
    MTAKGR,
    PairRE,
    RotatE,
    TransAE,
    TransE,
)
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm

E, R = 20, 4


@pytest.fixture(scope="module")
def modal_features():
    rng = np.random.default_rng(0)
    return {
        "text": rng.normal(size=(E, 6)),
        "mol": rng.normal(size=(E, 6)),
        "struct": rng.normal(size=(E, 6)),
    }


def _translational_models(feats):
    rng = np.random.default_rng(1)
    return [
        TransE(E, R, dim=8, rng=rng),
        DistMult(E, R, dim=8, rng=rng),
        ComplEx(E, R, dim=4, rng=rng),
        RotatE(E, R, dim=4, rng=rng),
        PairRE(E, R, dim=8, rng=rng),
        DualE(E, R, dim=4, rng=rng),
        IKRL(E, R, feats["mol"], dim=8, rng=rng),
        MTAKGR(E, R, feats["text"], feats["mol"], dim=8, rng=rng),
        TransAE(E, R, feats["text"], feats["mol"], dim=8, rng=rng),
    ]


class TestTripleScorers:
    def test_triple_scores_shape(self, modal_features):
        triples = np.array([[0, 0, 1], [2, 3, 4], [5, 1, 6]])
        for model in _translational_models(modal_features):
            scores = model.triple_scores(triples)
            assert scores.shape == (3,), type(model).__name__

    def test_predict_tails_shape_covers_inverse(self, modal_features):
        heads = np.array([0, 1])
        rels = np.array([0, R + 1])  # one inverse relation id
        for model in _translational_models(modal_features):
            scores = model.predict_tails(heads, rels)
            assert scores.shape == (2, E), type(model).__name__
            assert np.isfinite(scores).all(), type(model).__name__

    def test_training_and_inference_scores_agree(self, modal_features):
        """score of (h,r,t) must equal column t of predict_tails(h,r)."""
        triples = np.array([[0, 0, 1], [2, 3, 4], [7, 2, 9]])
        for model in _translational_models(modal_features):
            name = type(model).__name__
            if name == "TransAE":
                continue  # folds a batch-level reconstruction term into scores
            train_scores = model.triple_scores(triples).data
            infer = model.predict_tails(triples[:, 0], triples[:, 1])
            picked = infer[np.arange(3), triples[:, 2]]
            np.testing.assert_allclose(train_scores, picked, atol=1e-8,
                                       err_msg=name)

    def test_gradients_flow(self, modal_features):
        triples = np.array([[0, 0, 1], [2, 3, 4]])
        for model in _translational_models(modal_features):
            model.zero_grad()
            model.triple_scores(triples).sum().backward()
            grads = [p.grad is not None for p in model.parameters()]
            assert any(grads), type(model).__name__


class TestRotatESpecifics:
    def test_rotation_preserves_modulus(self):
        model = RotatE(E, R, dim=4, rng=np.random.default_rng(0))
        cos, sin = model._unit_rotation(np.array([0, 1]))
        modulus = cos.data ** 2 + sin.data ** 2
        np.testing.assert_allclose(modulus, np.ones_like(modulus), atol=1e-6)

    def test_perfect_triple_scores_gamma(self):
        model = RotatE(3, 1, dim=2, gamma=12.0, rng=np.random.default_rng(0))
        # Force tail = rotation of head: copy rotated head into tail row.
        cos, sin = model._unit_rotation(np.array([0]))
        h = model.entity_embedding.weight.data[0]
        h_re, h_im = h[:2], h[2:]
        t_re = h_re * cos.data[0] - h_im * sin.data[0]
        t_im = h_re * sin.data[0] + h_im * cos.data[0]
        model.entity_embedding.weight.data[1] = np.concatenate([t_re, t_im])
        score = float(model.triple_scores(np.array([[0, 0, 1]])).data[0])
        assert score == pytest.approx(12.0, abs=1e-3)


class TestDualESpecifics:
    def test_relation_normalised_to_unit_dual_quaternion(self):
        model = DualE(E, R, dim=3, rng=np.random.default_rng(0))
        comps = model._normalized_relation(np.array([0, 1]))
        q_r = [c.data for c in comps[:4]]
        q_d = [c.data for c in comps[4:]]
        norm = sum(c * c for c in q_r)
        np.testing.assert_allclose(norm, np.ones_like(norm), atol=1e-6)
        dot = sum(cr * cd for cr, cd in zip(q_r, q_d))
        np.testing.assert_allclose(dot, np.zeros_like(dot), atol=1e-6)


class TestOneToNModels:
    @pytest.fixture(scope="class")
    def prepared(self):
        mkg = generate_drkg_mm(DRKGConfig().scaled(0.15))
        feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                               gin_epochs=1, compgcn_epochs=1)
        return mkg, feats

    def _models(self, mkg, feats):
        rng = np.random.default_rng(2)
        return [
            ConvE(mkg.num_entities, mkg.num_relations, dim=16, rng=rng),
            CompGCNLinkPredictor(mkg.num_entities, mkg.num_relations,
                                 mkg.split.train, dim=8, rng=rng),
            MKGformer(mkg.num_entities, mkg.num_relations, feats.textual,
                      feats.molecular, feats.structural, dim=16, rng=rng),
        ]

    def test_score_queries_full(self, prepared):
        mkg, feats = prepared
        for model in self._models(mkg, feats):
            scores = model.score_queries(np.array([0, 1]), np.array([0, 1]))
            assert scores.shape == (2, mkg.num_entities), type(model).__name__

    def test_score_queries_candidates_match_full(self, prepared):
        mkg, feats = prepared
        cands = np.array([[0, 5, 9], [1, 2, 3]])
        for model in self._models(mkg, feats):
            name = type(model).__name__
            model.eval()
            full = model.score_queries(np.array([0, 1]), np.array([0, 1])).data
            sub = model.score_queries(np.array([0, 1]), np.array([0, 1]), cands).data
            for row in range(2):
                np.testing.assert_allclose(sub[row], full[row, cands[row]],
                                           atol=1e-8, err_msg=name)

    def test_predict_tails_finite(self, prepared):
        mkg, feats = prepared
        for model in self._models(mkg, feats):
            out = model.predict_tails(np.array([0]), np.array([mkg.num_relations]))
            assert np.isfinite(out).all(), type(model).__name__


class TestPredictHeads:
    def test_head_queries_rank_through_inverse_relations(self, modal_features):
        for model in _translational_models(modal_features):
            tails = np.array([1, 4])
            rels = np.array([0, 2])
            np.testing.assert_array_equal(
                model.predict_heads(tails, rels),
                model.predict_tails(tails, rels + R),
                err_msg=type(model).__name__)

    def test_inverse_ids_rejected(self, modal_features):
        model = _translational_models(modal_features)[0]
        with pytest.raises(ValueError, match="original relation ids"):
            model.predict_heads(np.array([0]), np.array([R]))
