"""Every model's ``predict_tails`` must be a clean inference path.

Audited properties (the ``inference_mode`` contract shared via
``baselines.base``): dropout and batch-norm run in eval mode (so
repeated calls are deterministic), the model's training flag is
restored afterwards, batch-norm running statistics are untouched, and
the optional ``inference_dtype`` fast path controls the score dtype.
"""

import numpy as np
import pytest

from repro import nn
from repro.baselines import MODEL_REGISTRY, build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm


@pytest.fixture(scope="module")
def prepared():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.15))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    return mkg, feats


@pytest.fixture(scope="module")
def models(prepared):
    mkg, feats = prepared
    built = {}
    for name in sorted(MODEL_REGISTRY):
        model, _ = build_model(name, mkg, feats, np.random.default_rng(1), dim=16)
        built[name] = model
    return mkg, built


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
class TestPredictTailsInferenceMode:
    def test_deterministic_and_mode_restored(self, models, name):
        mkg, built = models
        model = built[name]
        heads = np.array([0, 1, 2])
        rels = np.array([0, 1, 0])
        if hasattr(model, "train"):
            model.train(True)
        first = model.predict_tails(heads, rels)
        second = model.predict_tails(heads, rels)
        # Dropout/batch-norm in eval mode -> two calls agree exactly.
        np.testing.assert_array_equal(first, second)
        assert getattr(model, "training", True) is True
        if hasattr(model, "train"):
            model.train(False)

    def test_batchnorm_stats_untouched(self, models, name):
        mkg, built = models
        model = built[name]
        if not hasattr(model, "state_dict"):
            pytest.skip("model has no buffers")
        before = {k: v.copy() for k, v in model.state_dict().items()
                  if k.startswith("buffer::")}
        if not before:
            pytest.skip("model has no buffers")
        if hasattr(model, "train"):
            model.train(True)
        model.predict_tails(np.array([0, 1]), np.array([0, 0]))
        after = {k: v for k, v in model.state_dict().items()
                 if k.startswith("buffer::")}
        for key, value in before.items():
            np.testing.assert_array_equal(after[key], value, err_msg=key)
        if hasattr(model, "train"):
            model.train(False)

    def test_inference_dtype_float32(self, models, name):
        mkg, built = models
        model = built[name]
        if not hasattr(model, "inference_dtype"):
            pytest.skip("model has no inference dtype knob")
        heads = np.array([0, 1])
        rels = np.array([0, 0])
        baseline = model.predict_tails(heads, rels)
        model.inference_dtype = np.float32
        try:
            fast = model.predict_tails(heads, rels)
        finally:
            model.inference_dtype = None
        assert fast.dtype == np.float32
        np.testing.assert_allclose(fast, baseline.astype(np.float32), rtol=1e-5)


def test_inference_mode_restores_on_error():
    layer = nn.Linear(4, 4)
    layer.train(True)
    with pytest.raises(RuntimeError):
        with nn.inference_mode(layer):
            assert layer.training is False
            assert not nn.is_grad_enabled()
            raise RuntimeError("boom")
    assert layer.training is True
    assert nn.is_grad_enabled()
