"""Model registry and the negative-sampling trainer."""

import numpy as np
import pytest

from repro.baselines import (
    MODEL_REGISTRY,
    NegativeSamplingTrainer,
    TransE,
    build_model,
    get_spec,
    model_names,
)
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm


@pytest.fixture(scope="module")
def prepared():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.15))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    return mkg, feats


class TestRegistry:
    def test_fourteen_models(self):
        assert len(MODEL_REGISTRY) == 14

    def test_groups(self):
        groups = {spec.group for spec in MODEL_REGISTRY.values()}
        assert groups == {"unimodal", "multimodal", "ours"}
        assert len(model_names(("unimodal",))) == 9
        assert len(model_names(("multimodal",))) == 4

    def test_unknown_model_raises(self, prepared):
        mkg, feats = prepared
        with pytest.raises(ValueError, match="valid names"):
            build_model("GPT", mkg, feats, np.random.default_rng(0))

    def test_get_spec_by_name(self):
        spec = get_spec("CamE")
        assert spec.name == "CamE" and spec.group == "ours"

    def test_get_spec_miss_lists_every_valid_name(self):
        with pytest.raises(ValueError) as excinfo:
            get_spec("BERT")
        message = str(excinfo.value)
        for name in MODEL_REGISTRY:
            assert name in message

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_build_and_one_epoch(self, prepared, name):
        mkg, feats = prepared
        model, trainer = build_model(name, mkg, feats,
                                     np.random.default_rng(1), dim=16)
        loss = trainer.train_epoch()
        assert np.isfinite(loss), name
        scores = model.predict_tails(np.array([0]), np.array([0]))
        assert scores.shape == (1, mkg.num_entities)

    def test_negatives_1ton_flag(self, prepared):
        mkg, feats = prepared
        model, trainer = build_model("ConvE", mkg, feats,
                                     np.random.default_rng(1), dim=16,
                                     negatives_1ton=10)
        assert trainer.batcher.negatives == 10


class TestNegativeSamplingTrainer:
    def test_loss_decreases(self, prepared):
        mkg, _ = prepared
        rng = np.random.default_rng(3)
        model = TransE(mkg.num_entities, mkg.num_relations, dim=16, rng=rng)
        trainer = NegativeSamplingTrainer(model, mkg.split, rng, lr=0.02)
        first = trainer.train_epoch()
        for _ in range(4):
            last = trainer.train_epoch()
        assert last < first

    def test_self_adversarial_mode_runs(self, prepared):
        mkg, _ = prepared
        rng = np.random.default_rng(3)
        model = TransE(mkg.num_entities, mkg.num_relations, dim=16, rng=rng)
        trainer = NegativeSamplingTrainer(model, mkg.split, rng, lr=0.02,
                                          self_adversarial=True)
        assert np.isfinite(trainer.train_epoch())

    def test_fit_restores_best_state(self, prepared):
        mkg, _ = prepared
        rng = np.random.default_rng(3)
        model = TransE(mkg.num_entities, mkg.num_relations, dim=16, rng=rng)
        trainer = NegativeSamplingTrainer(model, mkg.split, rng, lr=0.02)
        report = trainer.fit(2, eval_every=1, eval_max_queries=20)
        assert report.best_state is not None
        assert len(report.eval_history) == 2
        assert len(report.epoch_seconds) == 2

    def test_inverse_triples_used(self, prepared):
        mkg, _ = prepared
        rng = np.random.default_rng(3)
        model = TransE(mkg.num_entities, mkg.num_relations, dim=8, rng=rng)
        trainer = NegativeSamplingTrainer(model, mkg.split, rng)
        assert len(trainer.train_triples) == 2 * len(mkg.split.train)
        assert trainer.train_triples[:, 1].max() >= mkg.num_relations
