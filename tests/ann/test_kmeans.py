"""Seeded k-means: determinism, cell invariants, degenerate inputs."""

import numpy as np
import pytest

from repro.ann import kmeans


class TestKMeans:
    def test_deterministic_for_identical_inputs(self, clustered):
        c1, a1 = kmeans(clustered, 16, seed=3)
        c2, a2 = kmeans(clustered, 16, seed=3)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(a1, a2)

    def test_seed_changes_partition(self, clustered):
        _, a1 = kmeans(clustered, 16, seed=0)
        _, a2 = kmeans(clustered, 16, seed=1)
        assert not np.array_equal(a1, a2)

    def test_shapes_and_dtypes(self, clustered):
        centroids, assign = kmeans(clustered, 10)
        assert centroids.shape == (10, clustered.shape[1])
        assert centroids.dtype == np.float64
        assert assign.shape == (len(clustered),)
        assert assign.dtype == np.int64

    def test_every_cell_nonempty(self, clustered):
        _, assign = kmeans(clustered, 25, seed=7)
        assert len(np.unique(assign)) == 25

    def test_k_clamped_to_n(self):
        x = np.random.default_rng(0).normal(size=(5, 3))
        centroids, assign = kmeans(x, 50)
        assert len(centroids) == 5
        assert len(np.unique(assign)) == 5

    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(1)
        centers = 100.0 * np.eye(4)[:, :3]  # 4 far-apart centers in 3-D
        x = np.concatenate([c + 0.01 * rng.normal(size=(30, 3))
                            for c in centers])
        _, assign = kmeans(x, 4, seed=0)
        # Each true cluster must land entirely in one cell.
        for block in range(4):
            assert len(np.unique(assign[30 * block:30 * (block + 1)])) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="empty"):
            kmeans(np.empty((0, 4)), 2)
        with pytest.raises(ValueError, match="shape"):
            kmeans(np.zeros(7), 2)
