"""IVF index: layout invariants, exactness at full probe, recall, payload."""

import numpy as np
import pytest

from repro.ann import IVFIndex, METRICS, default_nlist, default_nprobe
from repro.serve import topk_indices


def _brute_force(metric, query, vectors, k):
    if metric == "ip":
        scores = vectors @ query
    elif metric == "l2":
        scores = -((vectors - query) ** 2).sum(axis=1)
    else:
        scores = -np.abs(vectors - query).sum(axis=1)
    return topk_indices(scores, k), scores


class TestLayout:
    def test_ids_are_a_permutation(self, clustered):
        index = IVFIndex.build(clustered, metric="l2")
        np.testing.assert_array_equal(np.sort(index.ids),
                                      np.arange(len(clustered)))

    def test_offsets_partition_the_table(self, clustered):
        index = IVFIndex.build(clustered, metric="l2")
        assert index.offsets[0] == 0
        assert index.offsets[-1] == len(clustered)
        assert np.all(np.diff(index.offsets) > 0)  # no empty lists
        assert len(index.offsets) == index.nlist + 1

    def test_defaults(self, clustered):
        index = IVFIndex.build(clustered, metric="ip")
        assert index.nlist == default_nlist(len(clustered))
        assert index.default_nprobe == default_nprobe(index.nlist)

    def test_full_probe_covers_everything(self, clustered):
        index = IVFIndex.build(clustered, metric="l1")
        cands = index.probe(clustered[:3], nprobe=index.nlist)
        for cand in cands:
            np.testing.assert_array_equal(np.sort(cand),
                                          np.arange(len(clustered)))

    def test_rejects_bad_config(self, clustered):
        with pytest.raises(ValueError, match="metric"):
            IVFIndex.build(clustered, metric="cosine")
        with pytest.raises(ValueError, match="store"):
            IVFIndex.build(clustered, metric="l2", store="int4")
        with pytest.raises(ValueError, match="non-empty"):
            IVFIndex.build(np.empty((0, 4)), metric="l2")


class TestSearch:
    @pytest.mark.parametrize("metric", METRICS)
    def test_full_probe_float64_matches_brute_force(self, clustered, metric):
        index = IVFIndex.build(clustered, metric=metric, store="float64")
        queries = clustered[:5] + 0.01
        results = index.search(queries, k=10, nprobe=index.nlist)
        for query, (ids, scores) in zip(queries, results):
            ref_ids, ref_scores = _brute_force(metric, query, clustered, 10)
            np.testing.assert_array_equal(ids, ref_ids)
            np.testing.assert_allclose(scores, ref_scores[ids], rtol=1e-10)

    @pytest.mark.parametrize("metric", METRICS)
    def test_probe_recall_at_default_nprobe(self, clustered, metric):
        """>= 0.95 candidate recall@10 on clustered vectors at the
        default probe.

        This is the quantity serving depends on: ``probe`` only has to
        *contain* the true top-k (the exact rerank fixes the order), so
        recall here is membership of the brute-force top-10 in the
        probed candidate set.  Probing ranks float64 centroids, so the
        stored-table dtype does not affect it.
        """
        index = IVFIndex.build(clustered, metric=metric, seed=0)
        rng = np.random.default_rng(2)
        queries = clustered[rng.integers(0, len(clustered), 64)] + 0.02
        cands = index.probe(queries)
        recalls = []
        for query, cand in zip(queries, cands):
            ref_ids, _ = _brute_force(metric, query, clustered, 10)
            recalls.append(len(set(cand) & set(ref_ids)) / len(ref_ids))
        assert np.mean(recalls) >= 0.95, (metric, np.mean(recalls))

    def test_int8_ranking_recovers_with_nprobe(self, clustered):
        """Ranking on int8 *stored* vectors (``search``) loses a little
        recall to quantization noise; more probes buy it back.  Serving
        sidesteps this entirely by reranking exactly."""
        index = IVFIndex.build(clustered, metric="l2", store="int8")
        rng = np.random.default_rng(3)
        queries = clustered[rng.integers(0, len(clustered), 32)] + 0.02

        def search_recall(nprobe):
            recalls = []
            for query, (ids, _) in zip(queries,
                                       index.search(queries, 10, nprobe)):
                ref_ids, _ = _brute_force("l2", query, clustered, 10)
                recalls.append(len(set(ids) & set(ref_ids)) / len(ref_ids))
            return float(np.mean(recalls))

        assert search_recall(index.nlist) >= search_recall(index.default_nprobe) >= 0.85

    def test_nprobe_monotonically_improves_recall(self, clustered):
        index = IVFIndex.build(clustered, metric="l2", store="float64")
        query = clustered[7] + 0.05
        ref_ids, _ = _brute_force("l2", query, clustered, 10)
        recalls = []
        for nprobe in (1, index.default_nprobe, index.nlist):
            (ids, _), = index.search(query[None], k=10, nprobe=nprobe)
            recalls.append(len(set(ids) & set(ref_ids)) / 10)
        assert recalls == sorted(recalls)
        assert recalls[-1] == 1.0

    def test_tie_break_ascending_id(self):
        # Four identical vectors: stored scores tie; ids must come back sorted.
        x = np.tile(np.array([[1.0, 2.0]]), (4, 1))
        index = IVFIndex.build(x, metric="ip", store="float64", nlist=1)
        (ids, _), = index.search(np.array([[1.0, 1.0]]), k=4, nprobe=1)
        np.testing.assert_array_equal(ids, [0, 1, 2, 3])


class TestPayload:
    def test_round_trip_preserves_search(self, clustered):
        index = IVFIndex.build(clustered, metric="l1", seed=5)
        clone = IVFIndex.from_arrays(*index.to_arrays())
        queries = clustered[10:13]
        for (ids_a, sc_a), (ids_b, sc_b) in zip(index.search(queries, 8),
                                                clone.search(queries, 8)):
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_array_equal(sc_a, sc_b)
        assert clone.default_nprobe == index.default_nprobe
        assert clone.store == index.store

    def test_missing_array_raises_keyerror(self, clustered):
        index = IVFIndex.build(clustered, metric="l2")
        meta, arrays = index.to_arrays()
        del arrays["offsets"]
        with pytest.raises(KeyError, match="offsets"):
            IVFIndex.from_arrays(meta, arrays)

    def test_int8_memory_budget(self, clustered):
        index = IVFIndex.build(clustered, metric="l2", store="int8")
        memory = index.memory()
        assert memory["table_ratio_vs_float64"] <= 0.30
        assert memory["table_bytes"] < memory["float64_table_bytes"]
