"""Shared vector sets for the ANN tests."""

import numpy as np
import pytest


def clustered_vectors(num: int, dim: int, num_clusters: int,
                      seed: int = 0, spread: float = 0.08) -> np.ndarray:
    """A mixture of tight gaussians — the regime IVF indexes exist for.

    Trained entity tables cluster by entity type / neighborhood, so this
    (not an isotropic cloud, the ANN worst case) is the representative
    distribution for recall assertions.
    """
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(num_clusters, dim))
    assign = rng.integers(0, num_clusters, size=num)
    return centers[assign] + spread * rng.normal(size=(num, dim))


@pytest.fixture(scope="session")
def clustered():
    return clustered_vectors(2000, 16, 40, seed=0)
