"""End-to-end distributed tracing across the pool front-end and workers."""

import glob

import pytest

from repro.obs import (
    build_trace_trees,
    disable_tracing,
    enable_tracing,
    get_tracer,
    read_trace,
)

from .conftest import http


@pytest.fixture(autouse=True)
def _tracing_off():
    get_tracer().reset()
    yield
    disable_tracing()


def _drain(server):
    """Drain-shutdown so workers flush their per-rank export files."""
    server.request_shutdown(drain=True)
    server.join(timeout=30)


def _all_events(path):
    events = read_trace(path)
    for worker_file in sorted(glob.glob(path + ".w*")):
        events += read_trace(worker_file)
    return events


class TestStitchedTraces:
    def test_one_predict_is_one_cross_process_trace(self, pool_factory,
                                                    tmp_path):
        path = str(tmp_path / "pool.jsonl")
        enable_tracing(path, flush_every=1)
        server = pool_factory(workers=2)
        status, payload, headers = http(
            server, "POST", "/predict", {"head": 0, "relation": 0, "k": 3})
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        assert len(trace_id) == 32
        int(trace_id, 16)
        _drain(server)
        disable_tracing()
        trees = build_trace_trees(_all_events(path))
        [tree] = [t for t in trees if t["trace_id"] == trace_id]
        # front-end pid + one worker pid
        assert len(tree["pids"]) == 2
        [root] = tree["roots"]
        assert root["record"]["name"] == "pool.request"
        assert root["record"]["status"] == 200
        [child] = [c for c in root["children"]
                   if c["record"]["name"] == "serve.request"]
        assert child["record"]["pid"] != root["record"]["pid"]
        assert child["record"]["parent_id"] == root["record"]["span_id"]
        # the worker's engine spans nest under its serve.request span
        assert any(g["record"]["name"] == "serve.predict"
                   for g in child["children"])

    def test_client_traceparent_is_adopted(self, pool_factory, tmp_path):
        path = str(tmp_path / "pool.jsonl")
        enable_tracing(path, flush_every=1)
        server = pool_factory(workers=1)
        supplied_trace, supplied_span = "ab" * 16, "cd" * 8
        status, _, headers = http(
            server, "POST", "/predict", {"head": 0, "relation": 0, "k": 3},
            headers={"traceparent": f"00-{supplied_trace}-{supplied_span}-01"})
        assert status == 200
        assert headers["X-Trace-Id"] == supplied_trace
        _drain(server)
        disable_tracing()
        [root] = [e for e in _all_events(path) if e["name"] == "pool.request"]
        assert root["trace_id"] == supplied_trace
        assert root["parent_id"] == supplied_span

    def test_error_envelope_carries_trace_id_from_worker(self, pool_factory,
                                                         tmp_path):
        path = str(tmp_path / "pool.jsonl")
        enable_tracing(path, flush_every=1)
        server = pool_factory(workers=1)
        status, payload, headers = http(
            server, "POST", "/predict", {"head": 0})  # missing relation
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert payload["error"]["trace_id"] == headers["X-Trace-Id"]

    def test_shed_429_carries_trace_id_and_retry_after(self, pool_factory):
        server = pool_factory(workers=1, rate_limit=0.001, rate_burst=1)
        enable_tracing()  # ring only: no export file needed for envelopes
        first = http(server, "POST", "/predict",
                     {"head": 0, "relation": 0, "k": 3})
        assert first[0] == 200
        status, payload, headers = http(
            server, "POST", "/predict", {"head": 0, "relation": 0, "k": 3})
        assert status == 429
        assert payload["error"]["code"] == "rate_limited"
        assert "Retry-After" in headers
        assert payload["error"]["trace_id"] == headers["X-Trace-Id"]

    def test_disabled_tracing_has_no_header_or_worker_files(self, pool_factory,
                                                            tmp_path):
        server = pool_factory(workers=1)
        status, payload, headers = http(
            server, "POST", "/predict", {"head": 0, "relation": 0, "k": 3})
        assert status == 200
        assert "X-Trace-Id" not in headers
        assert glob.glob(str(tmp_path / "*.w*")) == []


class TestPoolSLO:
    def test_stats_exposes_front_end_slo(self, pool_factory):
        server = pool_factory(workers=1)
        assert http(server, "POST", "/predict",
                    {"head": 0, "relation": 0, "k": 3})[0] == 200
        status, payload, _ = http(server, "GET", "/stats")
        assert status == 200
        slo = payload["slo"]
        assert slo["scope"] == "pool"
        route = slo["routes"]["/predict"]
        assert route["requests"] >= 1
        assert route["availability"] == 1.0

    def test_metrics_have_pool_scope_gauges(self, pool_factory):
        server = pool_factory(workers=1)
        assert http(server, "POST", "/predict",
                    {"head": 0, "relation": 0, "k": 3})[0] == 200
        status, text, _ = http(server, "GET", "/metrics")
        assert status == 200
        assert 'slo_latency_attainment{route="/predict",scope="pool"}' in text
