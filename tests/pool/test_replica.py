"""Zero-copy replica segment: publish/attach round-trip and safety rails."""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.pool import attach_replica, publish_replica


@pytest.fixture()
def fresh_model(prepared):
    """A second model instance with the same architecture, different weights."""
    mkg, feats = prepared
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(7), dim=16)
    return model


class TestRoundTrip:
    def test_attach_reproduces_published_weights(self, transe, fresh_model,
                                                 prepared):
        mkg, _ = prepared
        heads = mkg.split.test[:8, 0]
        rels = mkg.split.test[:8, 1]
        expected = transe.predict_tails(heads, rels)
        before = fresh_model.predict_tails(heads, rels)
        assert not np.allclose(expected, before)  # genuinely different weights

        segment = publish_replica(transe)
        try:
            shared = attach_replica(fresh_model, segment)
            assert shared > 0
            after = fresh_model.predict_tails(heads, rels)
            np.testing.assert_array_equal(after, expected)  # bit-identical
        finally:
            segment.close()

    def test_float64_params_are_views_not_copies(self, transe, fresh_model):
        segment = publish_replica(transe)
        try:
            attach_replica(fresh_model, segment)
            flat = segment.flat
            for _, param in fresh_model.named_parameters():
                if param.data.dtype == np.float64:
                    assert np.shares_memory(param.data, flat)
        finally:
            segment.close()

    def test_attached_views_are_read_only(self, transe, fresh_model):
        segment = publish_replica(transe)
        try:
            attach_replica(fresh_model, segment)
            wrote = False
            for _, param in fresh_model.named_parameters():
                if param.data.dtype == np.float64:
                    with pytest.raises(ValueError):
                        param.data[...] = 0.0
                    wrote = True
            assert wrote
        finally:
            segment.close()

    def test_segment_size_matches_state(self, transe):
        segment = publish_replica(transe)
        try:
            total = sum(np.asarray(v).size for v in transe.state_dict().values())
            assert segment.spec.total_size == total
            assert segment.nbytes == total * 8
        finally:
            segment.close()


class TestMismatch:
    def test_shape_mismatch_raises(self, transe, prepared):
        mkg, feats = prepared
        other, _ = build_model("TransE", mkg, feats, np.random.default_rng(3),
                               dim=8)  # different embedding dim
        segment = publish_replica(transe)
        try:
            with pytest.raises(ValueError, match="shape mismatch"):
                attach_replica(other, segment)
        finally:
            segment.close()
