"""POST /append on the pool tier: parent apply + replica republish.

The pool's workers attach to a read-only shared segment whose shapes are
fixed at publish time, so an append cannot be patched in place — the
parent grows its model, publishes a fresh segment, and rolls every
worker onto it.  These tests build their own model/split (the shared
session fixtures must never be mutated).
"""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.pool import PoolConfig, PoolServer

from .conftest import http


@pytest.fixture()
def own_pool():
    """A PoolServer over a private world, safe to append into."""
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.12))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6,
                           d_s=6, gin_epochs=1, compgcn_epochs=1)
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(1),
                           dim=16)
    server = PoolServer(model, mkg.split, PoolConfig(workers=2),
                        model_name="TransE")
    server.start_background()
    yield server, mkg
    server.request_shutdown(drain=False)
    server.join(timeout=15)


def append_body(mkg, name="POOL::1"):
    tail = mkg.split.graph.entities.name(3)
    return {"entities": [{"name": name, "type": "Compound",
                          "description": "streamed into the pool"}],
            "triples": [[name, 0, tail]]}


class TestPoolAppend:
    def test_append_republishes_and_preserves_predictions(self, own_pool):
        server, mkg = own_pool
        old = server.model.num_entities
        probe = {"head": mkg.split.graph.entities.name(3),
                 "relation": 0, "k": 5}
        status, before, _ = http(server, "POST", "/predict", probe)
        assert status == 200

        status, payload, _ = http(server, "POST", "/append",
                                  append_body(mkg), timeout=60)
        assert status == 200, payload
        assert payload["stream_generation"] == 1
        assert payload["num_entities"] == old + 1
        assert all(r["alive"] for r in payload["replicas"])

        # Replicas rolled onto the new segment: generations advanced and
        # the shared filter covers the appended triple.
        status, health, _ = http(server, "GET", "/healthz")
        assert health["stream"]["generation"] == 1
        assert health["num_entities"] == old + 1
        assert all(r["alive"] for r in health["replicas"])

        status, after, _ = http(server, "POST", "/predict", probe)
        assert status == 200
        assert after["results"] == before["results"]  # byte-identical

        status, ranked, _ = http(server, "POST", "/predict",
                                 {"head": "POOL::1", "relation": 0, "k": 5})
        assert status == 200 and len(ranked["results"]) == 5
        status, filtered, _ = http(
            server, "POST", "/predict",
            {"head": "POOL::1", "relation": 0, "k": old + 1,
             "filter_known": True})
        names = [r["entity"] for r in filtered["results"]]
        assert mkg.split.graph.entities.name(3) not in names

    def test_append_conflicts_and_bad_requests(self, own_pool):
        server, mkg = own_pool
        status, payload, _ = http(server, "POST", "/append", {})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        status, _, _ = http(server, "POST", "/append", append_body(mkg),
                            timeout=60)
        assert status == 200
        status, payload, _ = http(server, "POST", "/append",
                                  append_body(mkg), timeout=60)
        assert status == 409
        assert payload["error"]["code"] == "conflict"
        # A rejected append must not bump the generation.
        _, health, _ = http(server, "GET", "/healthz")
        assert health["stream"]["generation"] == 1
