"""Admission control: token buckets, per-client limiting, depth watermark."""

import pytest

from repro.pool import (AdmissionController, RateLimiter, TokenBucket,
                        format_retry_after)


class _Clock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_burst_then_shed(self):
        clock = _Clock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.acquire()[0] for _ in range(3)] == [True] * 3
        admitted, retry = bucket.acquire()
        assert not admitted
        assert retry == pytest.approx(1.0)

    def test_refill_is_exact(self):
        clock = _Clock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.acquire()[0]
        admitted, retry = bucket.acquire()
        assert not admitted and retry == pytest.approx(0.5)
        clock.advance(0.5)  # exactly one token accrued
        assert bucket.acquire()[0]

    def test_tokens_cap_at_burst(self):
        clock = _Clock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)  # a long idle period must not bank 6000 tokens
        assert bucket.acquire()[0]
        assert bucket.acquire()[0]
        assert not bucket.acquire()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestRateLimiter:
    def test_disabled_at_rate_zero(self):
        limiter = RateLimiter(rate=0.0, burst=1)
        assert not limiter.enabled
        assert all(limiter.acquire("c")[0] for _ in range(100))
        assert limiter.num_clients() == 0  # no bookkeeping when disabled

    def test_clients_are_independent(self):
        clock = _Clock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.acquire("a")[0]
        assert not limiter.acquire("a")[0]
        assert limiter.acquire("b")[0]  # b has its own untouched bucket

    def test_lru_bounds_client_map(self):
        clock = _Clock()
        limiter = RateLimiter(rate=1.0, burst=1, max_clients=2, clock=clock)
        for name in ("a", "b", "c"):
            limiter.acquire(name)
        assert limiter.num_clients() == 2
        # "a" was evicted: a fresh bucket admits it again immediately.
        assert limiter.acquire("a")[0]


class TestAdmissionController:
    def test_watermark_sheds(self):
        controller = AdmissionController(max_depth=2, retry_after=3.0)
        t1, _ = controller.try_admit("/predict")
        t2, _ = controller.try_admit("/predict")
        assert t1 is not None and t2 is not None
        shed, retry = controller.try_admit("/predict")
        assert shed is None and retry == 3.0
        # Another endpoint has its own depth.
        t3, _ = controller.try_admit("/score")
        assert t3 is not None

    def test_release_reopens_and_is_idempotent(self):
        controller = AdmissionController(max_depth=1)
        ticket, _ = controller.try_admit("/predict")
        assert controller.try_admit("/predict")[0] is None
        ticket.release()
        ticket.release()  # double release must not go negative
        assert controller.depth("/predict") == 0
        assert controller.try_admit("/predict")[0] is not None

    def test_context_manager_releases(self):
        controller = AdmissionController(max_depth=1)
        with controller.try_admit("/predict")[0]:
            assert controller.depth("/predict") == 1
        assert controller.depth("/predict") == 0

    def test_depths_snapshot(self):
        controller = AdmissionController(max_depth=4)
        controller.try_admit("/predict")
        controller.try_admit("/predict")
        assert controller.depths() == {"/predict": 2}


def test_format_retry_after_rounds_up_and_floors_at_one():
    assert format_retry_after(0.0) == "1"
    assert format_retry_after(0.2) == "1"
    assert format_retry_after(1.0) == "1"
    assert format_retry_after(1.01) == "2"
    assert format_retry_after(59.5) == "60"
