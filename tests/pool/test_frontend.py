"""Pool serve tier end-to-end: parity, shedding, deadlines, worker loss."""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.pool import PoolConfig
from repro.serve import PredictionEngine
from repro.serve.http import ServiceApp

from .conftest import http


def _wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestParity:
    """--pool N must answer exactly what the threaded ServiceApp answers."""

    def test_predict_and_score_byte_identical(self, pool_factory, transe,
                                              prepared):
        mkg, _ = prepared
        server = pool_factory(workers=2)
        reference = ServiceApp(PredictionEngine(transe, mkg.split,
                                                model_name="TransE"))
        h, r = int(mkg.split.test[0, 0]), int(mkg.split.test[0, 1])
        bodies = [
            {"head": h, "relation": r, "k": 5},
            {"head": h, "relation": r, "k": 8, "filter_known": True},
            {"tail": int(mkg.split.test[1, 2]), "relation": r, "k": 3},
        ]
        for body in bodies:
            status, payload, _ = http(server, "POST", "/predict", body)
            ref_status, ref_payload = reference.handle("POST", "/predict", body)
            assert status == ref_status == 200
            assert json.dumps(payload, sort_keys=True) == \
                json.dumps(ref_payload, sort_keys=True)
        triples = [[int(a), int(b), int(c)] for a, b, c in mkg.split.test[:4]]
        status, payload, _ = http(server, "POST", "/score",
                                  {"triples": triples})
        ref_status, ref_payload = reference.handle("POST", "/score",
                                                   {"triples": triples})
        assert status == ref_status == 200
        assert payload == ref_payload

    def test_error_envelopes_match_threaded(self, pool_factory, transe,
                                            prepared):
        mkg, _ = prepared
        server = pool_factory(workers=1)
        reference = ServiceApp(PredictionEngine(transe, mkg.split,
                                                model_name="TransE"))
        cases = [
            {"head": 0},                                  # missing relation
            {"head": 0, "tail": 1, "relation": 0},        # both anchors
            {"head": "no-such-entity", "relation": 0},    # unknown entity
            {"head": 0, "relation": 0, "k": 0},           # bad k
            {"head": 0, "relation": 0, "k": 100_000},     # oversized k
            {"head": 0, "relation": 0, "deadline_ms": -1},  # bad deadline
        ]
        for body in cases:
            status, payload, _ = http(server, "POST", "/predict", body)
            ref_status, ref_payload = reference.handle("POST", "/predict", body)
            assert (status, payload) == (ref_status, ref_payload), body
            assert status == 400
            assert set(payload["error"]) == {"code", "message"}


class TestHealthAndStats:
    def test_healthz_reports_replicas(self, pool_factory):
        server = pool_factory(workers=2)
        status, payload, _ = http(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["ann"] == {"supports_ann": True, "attached": False}
        assert payload["bundle"] == {"version": None}
        replicas = payload["replicas"]
        assert [r["rank"] for r in replicas] == [0, 1]
        assert all(r["alive"] and r["mode"] == "process" for r in replicas)
        assert len({r["pid"] for r in replicas}) == 2

    def test_stats_and_metrics_merge_worker_counters(self, pool_factory,
                                                     prepared):
        mkg, _ = prepared
        server = pool_factory(workers=2)
        for i in range(6):
            status, _, _ = http(server, "POST", "/predict", {
                "head": int(mkg.split.test[i, 0]),
                "relation": int(mkg.split.test[i, 1]), "k": 3})
            assert status == 200
        status, stats, _ = http(server, "GET", "/stats")
        assert status == 200
        assert stats["server"]["mode"] == "pool"
        assert stats["server"]["workers_alive"] == 2
        assert stats["server"]["requests"] >= 7
        worker_requests = sum(row.get("requests", 0)
                              for row in stats["workers"])
        assert worker_requests >= 6
        assert any("engine" in row for row in stats["workers"])
        status, text, headers = http(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        # Worker-side engine counters are merged into one exposition.
        assert "serve_queries_total" in text
        assert "pool_workers_alive 2" in text
        assert 'pool_requests_total{route="/predict",code="200"} 6' in text

    def test_unknown_route_404(self, pool_factory):
        server = pool_factory(workers=1)
        status, payload, _ = http(server, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_bad_json_400(self, pool_factory):
        server = pool_factory(workers=1)
        status, payload, _ = http(server, "POST", "/predict",
                                  raw=b"{not json")
        assert status == 400
        assert payload["error"]["code"] == "bad_json"


class TestAdmission:
    def test_queue_watermark_sheds_with_retry_after(self, pool_factory,
                                                    prepared):
        mkg, _ = prepared
        server = pool_factory(workers=1, max_queue_depth=2,
                              request_delay=0.25, shed_retry_after=2.0)
        body = {"head": int(mkg.split.test[0, 0]),
                "relation": int(mkg.split.test[0, 1]), "k": 3}
        results = []

        def fire():
            results.append(http(server, "POST", "/predict", body))

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        codes = sorted(status for status, _, _ in results)
        assert codes.count(200) >= 1
        assert codes.count(429) >= 1
        assert set(codes) <= {200, 429}
        for status, payload, headers in results:
            if status == 429:
                assert payload["error"]["code"] == "overloaded"
                assert headers["Retry-After"] == "2"
        status, stats, _ = http(server, "GET", "/stats")
        assert stats["pool"]["shed"]["queue_full"] >= 1

    def test_rate_limit_sheds_per_client(self, pool_factory, prepared):
        mkg, _ = prepared
        server = pool_factory(workers=1, rate_limit=0.001, rate_burst=1)
        body = {"head": int(mkg.split.test[0, 0]),
                "relation": int(mkg.split.test[0, 1]), "k": 3}
        first = http(server, "POST", "/predict", body,
                     headers={"X-Client-Id": "alice"})
        second = http(server, "POST", "/predict", body,
                      headers={"X-Client-Id": "alice"})
        other = http(server, "POST", "/predict", body,
                     headers={"X-Client-Id": "bob"})
        assert first[0] == 200
        assert second[0] == 429
        assert second[1]["error"]["code"] == "rate_limited"
        assert int(second[2]["Retry-After"]) >= 1
        assert other[0] == 200  # independent client budget

    def test_oversized_body_413(self, pool_factory):
        server = pool_factory(workers=1)
        status, payload, _ = http(server, "POST", "/predict",
                                  raw=b"x" * ((1 << 20) + 1))
        assert status == 413
        assert payload["error"]["code"] == "payload_too_large"


class TestDeadlines:
    def test_deadline_exceeded_504(self, pool_factory, prepared):
        mkg, _ = prepared
        server = pool_factory(workers=1, request_delay=0.4)
        body = {"head": int(mkg.split.test[0, 0]),
                "relation": int(mkg.split.test[0, 1]),
                "k": 3, "deadline_ms": 50}
        status, payload, _ = http(server, "POST", "/predict", body)
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"
        status, stats, _ = http(server, "GET", "/stats")
        assert stats["pool"]["deadline_exceeded"] >= 1

    def test_expired_work_is_skipped_by_workers(self, pool_factory, prepared):
        """Queued-behind requests whose deadline passed never run the model."""
        mkg, _ = prepared
        server = pool_factory(workers=1, request_delay=0.3, max_queue_depth=8)
        body = {"head": int(mkg.split.test[0, 0]),
                "relation": int(mkg.split.test[0, 1]),
                "k": 3, "deadline_ms": 100}
        results = []

        def fire():
            results.append(http(server, "POST", "/predict", body))

        threads = [threading.Thread(target=fire) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        codes = [status for status, _, _ in results]
        assert codes.count(504) >= 2  # only the first could have made it
        for status, payload, _ in results:
            if status == 504:
                assert payload["error"]["code"] == "deadline_exceeded"

    def test_generous_deadline_succeeds(self, pool_factory, prepared):
        mkg, _ = prepared
        server = pool_factory(workers=1)
        body = {"head": int(mkg.split.test[0, 0]),
                "relation": int(mkg.split.test[0, 1]),
                "k": 3, "deadline_ms": 30_000}
        status, payload, _ = http(server, "POST", "/predict", body)
        assert status == 200
        assert len(payload["results"]) == 3


class TestWorkerLoss:
    def test_killed_worker_respawns_and_serving_continues(self, pool_factory,
                                                          prepared):
        mkg, _ = prepared
        server = pool_factory(workers=2, health_interval=0.1,
                              health_timeout=5.0)
        _, payload, _ = http(server, "GET", "/healthz")
        victim_pid = payload["replicas"][0]["pid"]
        os.kill(victim_pid, signal.SIGKILL)

        def recovered():
            _, h, _ = http(server, "GET", "/healthz")
            pids = {r["pid"] for r in h["replicas"]}
            return (h["status"] == "ok" and victim_pid not in pids
                    and all(r["alive"] for r in h["replicas"]))

        assert _wait_until(recovered, timeout=20.0)
        body = {"head": int(mkg.split.test[0, 0]),
                "relation": int(mkg.split.test[0, 1]), "k": 3}
        status, _, _ = http(server, "POST", "/predict", body)
        assert status == 200
        _, stats, _ = http(server, "GET", "/stats")
        assert stats["pool"]["respawns"] >= 1
        assert stats["server"]["workers_alive"] == 2

    def test_inflight_requests_survive_worker_kill(self, pool_factory,
                                                   prepared):
        """Accepted requests are requeued (once) to a survivor, not dropped."""
        mkg, _ = prepared
        server = pool_factory(workers=2, health_interval=0.1,
                              request_delay=0.3, max_queue_depth=32)
        body = {"head": int(mkg.split.test[0, 0]),
                "relation": int(mkg.split.test[0, 1]), "k": 3}
        results = []

        def fire():
            results.append(http(server, "POST", "/predict", body))

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for t in threads:
            t.start()
        time.sleep(0.1)  # let requests reach the workers
        _, payload, _ = http(server, "GET", "/healthz")
        os.kill(payload["replicas"][0]["pid"], signal.SIGKILL)
        for t in threads:
            t.join()
        codes = [status for status, _, _ in results]
        # Every accepted request is answered: success, or an explicit
        # worker_lost 503 for a request lost twice — never a hang/empty.
        assert set(codes) <= {200, 503}
        assert codes.count(200) >= 1
        for status, payload, _ in results:
            if status == 503:
                assert payload["error"]["code"] == "worker_lost"

    def test_sigterm_kills_a_worker_and_pool_respawns(self, pool_factory):
        """Workers restore SIG_DFL at startup — a stray worker must die on
        plain SIGTERM (not inherit the front-end's asyncio handler) and
        the health loop must treat that like any other crash."""
        server = pool_factory(workers=2, health_interval=0.1)
        _, payload, _ = http(server, "GET", "/healthz")
        victim_pid = payload["replicas"][0]["pid"]
        os.kill(victim_pid, signal.SIGTERM)

        def gone_and_respawned():
            _, h, _ = http(server, "GET", "/healthz")
            pids = {r["pid"] for r in h["replicas"]}
            return victim_pid not in pids and h["status"] == "ok"

        assert _wait_until(gone_and_respawned, timeout=20.0)

    def test_workers_exit_when_frontend_dies_without_drain(self, transe,
                                                           prepared):
        """A front-end that dies hard (no drain) must not leak workers:
        each one notices it was orphaned on its next idle poll and exits."""
        import multiprocessing as mp

        from repro.pool import PoolServer

        mkg, _ = prepared
        ctx = mp.get_context("fork")
        # SimpleQueue writes synchronously — a buffered Queue would lose
        # the payload to os._exit before its feeder thread flushes.
        pid_queue = ctx.SimpleQueue()

        def doomed_frontend():
            config = PoolConfig(workers=2, health_interval=0.1)
            server = PoolServer(transe, mkg.split, config,
                                model_name="TransE")
            server.start_background()
            pid_queue.put([h.proc.pid
                           for h in server.pool.handles.values()])
            os._exit(1)  # skips atexit: daemon workers are NOT reaped

        frontend = ctx.Process(target=doomed_frontend)
        frontend.start()
        worker_pids = pid_queue.get()
        frontend.join(timeout=10)
        assert len(worker_pids) == 2

        def all_exited():
            for pid in worker_pids:
                try:
                    os.kill(pid, 0)
                    return False  # still alive
                except ProcessLookupError:
                    continue
            return True

        assert _wait_until(all_exited, timeout=10.0), worker_pids


class TestDrain:
    def test_graceful_drain_finishes_inflight_work(self, pool_factory,
                                                   prepared):
        mkg, _ = prepared
        server = pool_factory(workers=1, request_delay=0.3)
        body = {"head": int(mkg.split.test[0, 0]),
                "relation": int(mkg.split.test[0, 1]), "k": 3}
        result = {}

        def fire():
            result["response"] = http(server, "POST", "/predict", body)

        thread = threading.Thread(target=fire)
        thread.start()
        time.sleep(0.1)  # request is in flight on the worker
        server.request_shutdown(drain=True)
        thread.join(timeout=15)
        server.join(timeout=15)
        status, payload, _ = result["response"]
        assert status == 200
        assert len(payload["results"]) == 3
        # The listener is gone: new connections are refused.
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/healthz", timeout=2)

    def test_no_worker_processes_left_behind(self, pool_factory):
        server = pool_factory(workers=2)
        _, payload, _ = http(server, "GET", "/healthz")
        pids = [r["pid"] for r in payload["replicas"]]
        server.request_shutdown(drain=True)
        server.join(timeout=15)

        def all_gone():
            for pid in pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                return False
            return True

        assert _wait_until(all_gone, timeout=10.0)


class TestErrorStorm:
    def test_concurrent_error_envelopes_are_well_formed(self, pool_factory,
                                                        prepared):
        """A mixed error storm never corrupts envelopes or wedges the tier."""
        mkg, _ = prepared
        server = pool_factory(workers=2, max_queue_depth=64)
        good = {"head": int(mkg.split.test[0, 0]),
                "relation": int(mkg.split.test[0, 1]), "k": 3}
        cases = [
            ("raw", b"{not json", 400, "bad_json"),
            ("body", {"head": "no-such-entity", "relation": 0}, 400,
             "unknown_entity"),
            ("body", {"head": 0, "relation": "no-such-rel"}, 400,
             "unknown_relation"),
            ("body", {"head": 0, "relation": 0, "k": 100_000}, 400,
             "bad_request"),
            ("body", {"head": 0, "relation": 0, "deadline_ms": "soon"}, 400,
             "bad_request"),
            ("body", good, 200, None),
        ]
        results = []

        def fire(kind, payload, expected_status, expected_code):
            if kind == "raw":
                got = http(server, "POST", "/predict", raw=payload)
            else:
                got = http(server, "POST", "/predict", payload)
            results.append((got, expected_status, expected_code))

        threads = [threading.Thread(target=fire, args=case)
                   for case in cases * 4]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == len(cases) * 4
        for (status, payload, _), expected_status, expected_code in results:
            assert status == expected_status
            if expected_code is not None:
                assert set(payload["error"]) == {"code", "message"}
                assert payload["error"]["code"] == expected_code
            else:
                assert len(payload["results"]) == 3
        status, _, _ = http(server, "GET", "/healthz")
        assert status == 200
