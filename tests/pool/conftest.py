"""Shared fixtures for the multi-replica serve-tier tests."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.baselines import build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.pool import PoolConfig, PoolServer


@pytest.fixture(scope="session")
def prepared():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.12))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    return mkg, feats


@pytest.fixture(scope="session")
def transe(prepared):
    mkg, feats = prepared
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(1), dim=16)
    return model


@pytest.fixture()
def pool_factory(transe, prepared):
    """Start PoolServers on background threads; always stopped at teardown."""
    mkg, _ = prepared
    servers = []

    def make(**kwargs) -> PoolServer:
        config = PoolConfig(**kwargs)
        server = PoolServer(transe, mkg.split, config, model_name="TransE")
        servers.append(server)
        server.start_background()
        return server

    yield make
    for server in servers:
        server.request_shutdown(drain=False)
        server.join(timeout=15)


def http(server, method, path, body=None, headers=None, raw: bytes | None = None,
         timeout: float = 30.0):
    """One HTTP round-trip; returns (status, payload, headers)."""
    data = raw if raw is not None else (
        json.dumps(body).encode() if body is not None else None)
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            payload = response.read()
            ctype = response.headers.get_content_type()
            return (response.status,
                    json.loads(payload) if ctype == "application/json"
                    else payload.decode(), dict(response.headers))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)
