"""Approximate serving: exact-path identity, rerank parity, bundles, HTTP."""

import numpy as np
import pytest

from repro.baselines import TransE
from repro.kg import KGSplit, KnowledgeGraph, Vocabulary
from repro.serve import (
    AnnError,
    AnnServing,
    PredictionEngine,
    ServiceApp,
    load_bundle,
    save_bundle,
    supports_ann,
)


@pytest.fixture()
def ann(transe):
    return AnnServing.build(transe, seed=0)


@pytest.fixture()
def ann_engine(transe, prepared, ann):
    mkg, _ = prepared
    return PredictionEngine(transe, mkg.split, model_name="TransE",
                            cache_size=32, ann=ann)


def _clustered_split(num_entities=600, num_relations=4, num_clusters=24,
                     dim=16, seed=0):
    """A TransE whose entity table is a tight gaussian mixture (the
    distribution IVF is built for), plus a matching synthetic split."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(num_clusters, dim))
    table = centers[rng.integers(0, num_clusters, num_entities)]
    table += 0.05 * rng.normal(size=table.shape)
    triples = np.stack([rng.integers(0, num_entities, 300),
                        rng.integers(0, num_relations, 300),
                        rng.integers(0, num_entities, 300)], axis=1)
    graph = KnowledgeGraph(
        entities=Vocabulary([f"e{i}" for i in range(num_entities)]),
        relations=Vocabulary([f"r{i}" for i in range(num_relations)]),
        triples=triples, name="synthetic")
    split = KGSplit(graph=graph, train=triples[:200], valid=triples[200:250],
                    test=triples[250:])
    model = TransE(num_entities, num_relations, dim=dim,
                   rng=np.random.default_rng(seed))
    model.entity_embedding.weight.data[:] = table
    # Small translations keep queries inside the clustered point cloud.
    model.relation_embedding.weight.data[:] *= 0.02
    return model, split


class TestExactness:
    def test_approx_false_is_bit_identical(self, ann_engine, transe, prepared):
        """Attaching an index must not perturb the exact path at all."""
        mkg, _ = prepared
        plain = PredictionEngine(transe, mkg.split, model_name="TransE")
        for head, rel in ((0, 0), (3, 1), (5, 2)):
            ids_a, sc_a = ann_engine.top_k_tails(head, rel, 7, approx=False)
            ids_b, sc_b = plain.top_k_tails(head, rel, 7)
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_array_equal(sc_a, sc_b)

    def test_full_probe_matches_exact_path(self, ann_engine):
        """nprobe == nlist probes every list; the exact rerank then makes
        the approximate result identical to the exact one."""
        nlist = ann_engine.ann.index.nlist
        for head, rel in ((1, 0), (4, 2)):
            ids_e, sc_e = ann_engine.top_k_tails(head, rel, 5, approx=False)
            ids_a, sc_a = ann_engine.top_k_tails(head, rel, 5, approx=True,
                                                 nprobe=nlist)
            np.testing.assert_array_equal(ids_a, ids_e)
            np.testing.assert_allclose(sc_a, sc_e, rtol=1e-12)

    def test_reranked_scores_are_true_model_scores(self, ann_engine, transe):
        ids, scores = ann_engine.top_k_tails(2, 0, 5, approx=True)
        expect = transe.score_cells(np.full(len(ids), 2),
                                    np.zeros(len(ids), np.int64), ids)
        np.testing.assert_allclose(scores, expect, rtol=1e-12)

    def test_filter_known_excludes_known_tails(self, ann_engine, prepared):
        mkg, _ = prepared
        h, r, _t = (int(v) for v in mkg.split.train[0])
        known = set(ann_engine.filter.row(h, r).tolist())
        assert known
        ids, _ = ann_engine.top_k_tails(
            h, r, ann_engine.num_entities, filter_known=True, approx=True,
            nprobe=ann_engine.ann.index.nlist)
        assert not (known & set(ids.tolist()))


class TestRecall:
    def test_recall_at_default_nprobe_on_clustered_table(self):
        model, split = _clustered_split()
        engine = PredictionEngine(model, split, model_name="TransE",
                                  ann=AnnServing.build(model, seed=0))
        recall = engine.ann_self_check(num_queries=64, k=10, seed=1)
        assert recall >= 0.95, recall
        assert engine.stats()["ann"]["recall_check"] >= 0.95

    def test_self_check_requires_index(self, engine):
        with pytest.raises(AnnError, match="no ANN index"):
            engine.ann_self_check()


class TestFallback:
    def test_approx_without_index_falls_back_exactly(self, engine):
        ids_a, sc_a = engine.top_k_tails(1, 0, 5, approx=True)
        ids_e, sc_e = engine.top_k_tails(1, 0, 5, approx=False)
        np.testing.assert_array_equal(ids_a, ids_e)
        np.testing.assert_array_equal(sc_a, sc_e)
        assert engine.metrics.counter(
            "serve_ann_fallbacks_total", "").value == 1

    def test_supports_ann_gate(self, transe):
        assert supports_ann(transe)
        assert not supports_ann(object())

    def test_validate_rejects_index_larger_than_model(self, prepared, ann):
        mkg, _ = prepared
        shrunk = TransE(mkg.num_entities - 1, mkg.num_relations, dim=16,
                        rng=np.random.default_rng(9))
        with pytest.raises(AnnError, match="entities"):
            ann.validate_for(shrunk, mkg.num_entities - 1)

    def test_validate_accepts_stale_prefix(self, prepared, ann):
        """Fewer indexed rows than entities = streamed appends, legal."""
        mkg, _ = prepared
        grown = TransE(mkg.num_entities + 2, mkg.num_relations, dim=16,
                       rng=np.random.default_rng(9))
        ann.validate_for(grown, mkg.num_entities + 2)  # must not raise
        assert ann.stale_rows(mkg.num_entities + 2) == 2
        assert ann.stale_rows(mkg.num_entities) == 0

    def test_attach_ann_validates_then_enables(self, engine, ann):
        engine.attach_ann(ann, approx_default=True)
        assert engine.approx_default
        ids, _ = engine.top_k_tails(0, 0, 3)  # follows approx_default
        assert engine.stats()["ann"]["queries"] == 1
        assert len(ids) <= 3


class TestBundleArtifact:
    def test_round_trip_through_bundle(self, prepared, transe, ann, tmp_path):
        mkg, feats = prepared
        for path in (str(tmp_path / "dir_bundle"), str(tmp_path / "one.npz")):
            save_bundle(path, transe, "TransE", mkg.split, feats, dim=16,
                        ann=ann)
            engine = PredictionEngine.from_bundle(path, ann="require")
            assert engine.ann is not None
            assert engine.ann.source == "bundle"
            nlist = engine.ann.index.nlist
            ids_e, sc_e = engine.top_k_tails(1, 0, 5, approx=False)
            ids_a, sc_a = engine.top_k_tails(1, 0, 5, approx=True,
                                             nprobe=nlist)
            np.testing.assert_array_equal(ids_a, ids_e)
            np.testing.assert_allclose(sc_a, sc_e, rtol=1e-12)

    def test_require_raises_without_artifact(self, transe_bundle):
        with pytest.raises(AnnError, match="no ANN artifact"):
            PredictionEngine.from_bundle(transe_bundle, ann="require")

    def test_auto_and_off_modes(self, prepared, transe, ann, tmp_path):
        mkg, feats = prepared
        path = str(tmp_path / "bundle.npz")
        save_bundle(path, transe, "TransE", mkg.split, feats, dim=16, ann=ann)
        assert PredictionEngine.from_bundle(path).ann is not None   # auto
        assert PredictionEngine.from_bundle(path, ann="off").ann is None

    def test_build_mode_trains_at_load(self, transe_bundle):
        engine = PredictionEngine.from_bundle(transe_bundle, ann="build")
        assert engine.ann is not None
        assert engine.ann.source == "built"

    def test_newer_artifact_version_rejected(self, ann):
        meta, arrays = ann.to_payload()
        meta["format_version"] = 99
        with pytest.raises(AnnError, match="format_version"):
            AnnServing.from_payload(meta, arrays)

    def test_loaded_manifest_records_ann(self, prepared, transe, ann, tmp_path):
        mkg, feats = prepared
        path = str(tmp_path / "bundle")
        save_bundle(path, transe, "TransE", mkg.split, feats, dim=16, ann=ann)
        bundle = load_bundle(path)
        assert bundle.manifest["ann"]["nlist"] == ann.index.nlist
        assert bundle.ann_payload() is not None


class TestHTTP:
    def test_predict_accepts_approx_fields(self, ann_engine):
        app = ServiceApp(ann_engine)
        nlist = ann_engine.ann.index.nlist
        status, payload = app.handle("POST", "/predict", {
            "head": 1, "relation": 0, "k": 5, "approx": True,
            "nprobe": nlist})
        assert status == 200
        assert payload["query"]["approx"] is True
        exact = app.handle("POST", "/predict",
                           {"head": 1, "relation": 0, "k": 5})[1]
        assert payload["results"] == exact["results"]

    def test_predict_rejects_bad_nprobe(self, ann_engine):
        app = ServiceApp(ann_engine)
        status, payload = app.handle("POST", "/predict", {
            "head": 1, "relation": 0, "approx": True, "nprobe": 0})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_approx_without_index_is_a_client_error(self, engine):
        app = ServiceApp(engine)
        status, payload = app.handle("POST", "/predict", {
            "head": 1, "relation": 0, "approx": True})
        assert status == 400
        assert payload["error"]["code"] == "ann_unavailable"

    def test_stats_exposes_ann_section(self, ann_engine):
        app = ServiceApp(ann_engine)
        ann_engine.top_k_tails(0, 0, 3, approx=True)
        stats = app.handle("GET", "/stats", None)[1]
        assert stats["engine"]["ann"]["queries"] == 1
        assert stats["engine"]["ann"]["store"] == "int8"
