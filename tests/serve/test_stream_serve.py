"""Streaming on the serving tier: POST /append, bundle v3, CLI append.

Appends mutate the model and vocabulary, so nothing here touches the
session-scoped ``prepared``/``transe`` fixtures — every test gets a
private world.
"""

import copy
import json
import threading

import numpy as np
import pytest

from repro.baselines import build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.serve import (
    AnnServing,
    MicroBatcher,
    PredictionEngine,
    load_bundle,
    make_server,
    save_bundle,
)
from repro.serve.cli import main


@pytest.fixture(scope="module")
def base():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.12))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    return mkg, feats


@pytest.fixture()
def world(base):
    mkg, feats = copy.deepcopy(base)
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(1),
                           dim=16)
    return mkg, feats, model


@pytest.fixture()
def service(world):
    mkg, _, model = world
    engine = PredictionEngine(model, mkg.split, model_name="TransE")
    batcher = MicroBatcher(engine, max_batch=8, max_delay=0.002)
    server = make_server(engine, batcher, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, engine, mkg
    server.shutdown()
    server.server_close()
    batcher.close()
    thread.join(timeout=5)


def _request(server, method, path, body=None):
    import urllib.error
    import urllib.request

    port = server.server_address[1]
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def append_body(mkg, name="HTTP::1"):
    tail = mkg.split.graph.entities.name(3)
    return {"entities": [{"name": name, "type": "Compound",
                          "description": "streamed over http"}],
            "triples": [[name, 0, tail]]}


class TestHttpAppend:
    def test_append_then_query(self, service):
        server, engine, mkg = service
        old = engine.num_entities
        _, before = _request(server, "POST", "/predict",
                             {"head": 5, "relation": 0, "k": 5})
        status, payload = _request(server, "POST", "/append",
                                   append_body(mkg))
        assert status == 200
        assert payload["stream_generation"] == 1
        assert payload["num_entities"] == old + 1
        assert payload["applied"]["entity_ids"] == [old]
        # Pre-existing predictions identical; new entity rankable.
        _, after = _request(server, "POST", "/predict",
                            {"head": 5, "relation": 0, "k": 5})
        assert after["results"] == before["results"]
        status, ranked = _request(server, "POST", "/predict",
                                  {"head": "HTTP::1", "relation": 0, "k": 5})
        assert status == 200 and len(ranked["results"]) == 5
        status, health = _request(server, "GET", "/healthz")
        assert health["stream"]["generation"] == 1
        assert health["num_entities"] == old + 1

    def test_error_envelopes(self, service):
        server, _, mkg = service
        status, payload = _request(server, "POST", "/append", {})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        _request(server, "POST", "/append", append_body(mkg))
        status, payload = _request(server, "POST", "/append",
                                   append_body(mkg))  # duplicate name
        assert status == 409
        assert payload["error"]["code"] == "conflict"


class TestBundleV3:
    def test_appended_triples_and_log_round_trip(self, world, tmp_path):
        mkg, feats, model = world
        path = str(tmp_path / "bundle")
        old_triples = len(mkg.split.graph.triples)
        appended = np.array([[model.num_entities - 1, 0, 3]])
        stream = {"generation": 2, "log": [
            {"generation": 1, "entities": ["a"]},
            {"generation": 2, "entities": ["b"]}]}
        save_bundle(path, model, "TransE", mkg.split, feats, dim=16,
                    appended=appended, stream=stream)
        bundle = load_bundle(path)
        assert bundle.stream_generation == 2
        assert [e["generation"] for e in bundle.stream_log] == [1, 2]
        np.testing.assert_array_equal(bundle.appended, appended)
        # Appended rows joined the graph's triple set for filter builds.
        assert len(bundle.split.graph.triples) == old_triples + 1
        np.testing.assert_array_equal(bundle.split.graph.triples[-1],
                                      appended[0])

    def test_engine_from_bundle_restores_stream_state(self, world, tmp_path):
        mkg, feats, model = world
        path = str(tmp_path / "bundle")
        appended = np.array([[5, 0, 3]])
        save_bundle(path, model, "TransE", mkg.split, feats, dim=16,
                    appended=appended, stream={"generation": 3, "log": []})
        engine = PredictionEngine.from_bundle(path)
        assert engine.stream_generation == 3
        np.testing.assert_array_equal(engine.filter.row(5, 0), [3])


class TestCliAppend:
    def run_append(self, bundle_path, request, out, capsys):
        req = out + ".request.json"
        with open(req, "w", encoding="utf-8") as handle:
            json.dump(request, handle)
        assert main(["append", "--bundle", bundle_path,
                     "--request", req, "--out", out]) == 0
        return json.loads(capsys.readouterr().out)

    def test_append_re_exports_v3_with_ann_carried(self, world, tmp_path,
                                                   capsys):
        mkg, feats, model = world
        src = str(tmp_path / "src")
        out = str(tmp_path / "out")
        save_bundle(src, model, "TransE", mkg.split, feats, dim=16,
                    ann=AnnServing.build(model, nlist=4, seed=0))
        old = model.num_entities
        before = model.predict_tails(np.array([5]), np.array([0]))
        payload = self.run_append(src, append_body(mkg, "CLI::1"), out, capsys)
        assert payload["stream_generation"] == 1
        assert payload["num_entities"] == old + 1
        assert payload["ann"]["stale_rows"] == 1  # carried, not rebuilt

        bundle = load_bundle(out)
        assert bundle.stream_generation == 1
        assert bundle.stream_log[0]["entities"] == ["CLI::1"]
        assert len(bundle.features.molecular) == old + 1
        clone = bundle.build_model()
        assert clone.num_entities == old + 1
        after = clone.predict_tails(np.array([5]), np.array([0]))
        np.testing.assert_array_equal(after[:, :old], before)

        # The appended entity resolves and ranks on a reloaded engine.
        engine = PredictionEngine.from_bundle(out)
        new_id = engine.split.graph.entities.resolve("CLI::1")
        assert new_id == old
        ids, _ = engine.top_k_tails(new_id, 0, k=3)
        assert len(ids) == 3
        # ... and its known triple is filtered.
        ids, _ = engine.top_k_tails(new_id, 0, k=old + 1, filter_known=True)
        assert 3 not in ids

    def test_second_append_extends_the_log(self, world, tmp_path, capsys):
        mkg, feats, model = world
        src = str(tmp_path / "src")
        save_bundle(src, model, "TransE", mkg.split, feats, dim=16)
        self.run_append(src, append_body(mkg, "CLI::1"), src, capsys)
        payload = self.run_append(src, append_body(mkg, "CLI::2"), src, capsys)
        assert payload["stream_generation"] == 2
        bundle = load_bundle(src)
        assert [e["generation"] for e in bundle.stream_log] == [1, 2]
        assert len(bundle.appended) == 2

    def test_rejected_append_exits_nonzero(self, world, tmp_path):
        mkg, feats, model = world
        src = str(tmp_path / "src")
        save_bundle(src, model, "TransE", mkg.split, feats, dim=16)
        req = str(tmp_path / "bad.json")
        taken = mkg.split.graph.entities.name(0)
        with open(req, "w", encoding="utf-8") as handle:
            json.dump({"entities": [{"name": taken}]}, handle)
        with pytest.raises(SystemExit, match="conflict"):
            main(["append", "--bundle", src, "--request", req])
