"""Micro-batcher: coalescing, per-request ordering, graceful shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.serve import MicroBatcher


class _SlowEngine:
    """Delegates to a real engine with an artificial per-call delay,
    giving concurrent submitters time to pile into one batch."""

    def __init__(self, engine, delay=0.01):
        self._engine = engine
        self.delay = delay
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def scores(self, heads, rels):
        self.calls += 1
        time.sleep(self.delay)
        return self._engine.scores(heads, rels)


class TestCoalescing:
    def test_concurrent_submitters_coalesce(self, engine, prepared):
        mkg, _ = prepared
        slow = _SlowEngine(engine, delay=0.01)
        batcher = MicroBatcher(slow, max_batch=16, max_delay=0.02)
        queries = [(int(h), int(r)) for h, r in mkg.split.train[:48, :2]]
        results = {}

        def submit(i, h, r):
            results[i] = batcher.submit(h, r, k=5).result(timeout=30)

        threads = [threading.Thread(target=submit, args=(i, h, r))
                   for i, (h, r) in enumerate(queries)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()
        stats = batcher.stats()
        assert stats["requests_processed"] == len(queries)
        assert stats["batches_processed"] < len(queries)  # real coalescing
        assert stats["max_batch_seen"] > 1
        assert stats["mean_batch_size"] > 1.0

    def test_results_match_each_request(self, engine, transe, prepared):
        """Every future resolves to its *own* query's answer, in order."""
        mkg, _ = prepared
        batcher = MicroBatcher(engine, max_batch=8, max_delay=0.005)
        queries = [(int(h), int(r)) for h, r in mkg.split.test[:30, :2]]
        futures = [batcher.submit(h, r, k=5) for h, r in queries]
        for (h, r), future in zip(queries, futures):
            ids, scores = future.result(timeout=30)
            row = transe.predict_tails(np.array([h]), np.array([r]))[0]
            ref = np.argsort(-row, kind="stable")[:5]
            np.testing.assert_array_equal(ids, ref, err_msg=f"query {(h, r)}")
            np.testing.assert_array_equal(scores, row[ids])
        batcher.close()

    def test_mixed_filtered_and_unfiltered(self, engine, prepared):
        mkg, _ = prepared
        h, r, _t = (int(v) for v in mkg.split.train[0])
        batcher = MicroBatcher(engine, max_batch=4, max_delay=0.05)
        plain = batcher.submit(h, r, k=engine.num_entities)
        filtered = batcher.submit(h, r, k=engine.num_entities, filter_known=True)
        pids, _ = plain.result(timeout=30)
        fids, fscores = filtered.result(timeout=30)
        known = set(engine.filter.row(h, r).tolist())
        assert known & set(pids.tolist())
        assert not (known & set(fids.tolist()))
        assert np.all(fscores > -np.inf)
        batcher.close()


class TestLifecycle:
    def test_close_flushes_pending(self, engine):
        slow = _SlowEngine(engine, delay=0.02)
        batcher = MicroBatcher(slow, max_batch=4, max_delay=0.0)
        futures = [batcher.submit(i % 5, 0, k=3) for i in range(20)]
        batcher.close()
        assert all(f.done() for f in futures)
        assert batcher.stats()["pending"] == 0
        assert batcher.stats()["requests_processed"] == 20

    def test_submit_after_close_raises(self, engine):
        batcher = MicroBatcher(engine)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(0, 0)

    def test_close_is_idempotent(self, engine):
        batcher = MicroBatcher(engine)
        batcher.close()
        batcher.close()

    def test_context_manager(self, engine):
        with MicroBatcher(engine) as batcher:
            ids, _ = batcher.predict(0, 0, k=2)
            assert len(ids) == 2
        assert batcher.stats()["requests_processed"] == 1

    def test_engine_failure_propagates_to_futures(self, engine):
        class Exploding:
            def __getattr__(self, name):
                return getattr(engine, name)

            def scores(self, heads, rels):
                raise RuntimeError("boom")

        batcher = MicroBatcher(Exploding(), max_batch=4, max_delay=0.01)
        future = batcher.submit(0, 0, k=3)
        with pytest.raises(RuntimeError, match="boom"):
            future.result(timeout=30)
        # Worker survives a failing batch and keeps serving.
        assert batcher._worker.is_alive()
        batcher.close()

    def test_invalid_max_batch(self, engine):
        with pytest.raises(ValueError):
            MicroBatcher(engine, max_batch=0)


class TestShutdownRaces:
    """Regression tests: shutdown/cancellation must never hang a future."""

    def _gated(self, engine):
        """Engine whose scores() blocks until the test releases it."""
        class Gated:
            entered = threading.Event()
            release = threading.Event()

            def __getattr__(self, name):
                return getattr(engine, name)

            def scores(self, heads, rels):
                Gated.entered.set()
                assert Gated.release.wait(timeout=30)
                return engine.scores(heads, rels)

        return Gated()

    def test_close_fails_unflushed_requests_with_clean_error(self, engine):
        """A request stuck behind a wedged worker gets a BatcherClosedError,
        not a forever-pending future (the old hang)."""
        from repro.serve.batcher import BatcherClosedError

        gated = self._gated(engine)
        batcher = MicroBatcher(gated, max_batch=1, max_delay=0.0)
        first = batcher.submit(0, 0, k=3)
        assert gated.entered.wait(timeout=10)  # worker is wedged in scores()
        straggler = batcher.submit(1, 0, k=3)  # races close(), stays queued
        batcher.close(timeout=0.2)             # worker cannot flush in time
        assert straggler.done()
        with pytest.raises(BatcherClosedError):
            straggler.result(timeout=0)
        gated.release.set()                    # un-wedge; first still resolves
        ids, _ = first.result(timeout=30)
        assert len(ids) == 3

    def test_submit_after_close_raises_typed_error(self, engine):
        from repro.serve.batcher import BatcherClosedError

        batcher = MicroBatcher(engine)
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit(0, 0)

    def test_cancelled_future_does_not_kill_worker(self, engine):
        """A waiter that gave up (cancelled future) must not crash the
        worker thread — the old InvalidStateError hung everyone after it."""
        gated = self._gated(engine)
        batcher = MicroBatcher(gated, max_batch=1, max_delay=0.0)
        blocked = batcher.submit(0, 0, k=3)
        assert gated.entered.wait(timeout=10)
        abandoned = batcher.submit(1, 0, k=3)
        assert abandoned.cancel()              # queued, so cancellable
        gated.release.set()
        ids, _ = blocked.result(timeout=30)
        assert len(ids) == 3
        # The worker survived delivering into the cancelled future and
        # keeps serving new requests.
        follow_up = batcher.submit(2, 0, k=3)
        ids, _ = follow_up.result(timeout=30)
        assert len(ids) == 3
        assert batcher._worker.is_alive()
        batcher.close()
