"""Prediction engine: top-k parity, filtering, caching, score_triples."""

import numpy as np
import pytest

from repro.eval import build_csr_filter
from repro.serve import PredictionEngine, topk_indices


class TestTopK:
    def test_topk_matches_direct_predict(self, engine, transe):
        ids, scores = engine.top_k_tails(2, 0, k=5)
        row = transe.predict_tails(np.array([2]), np.array([0]))[0]
        ref = np.argsort(-row, kind="stable")[:5]
        np.testing.assert_array_equal(ids, ref)
        np.testing.assert_array_equal(scores, row[ids])  # bit-identical

    def test_tie_break_is_ascending_id(self):
        row = np.array([1.0, 3.0, 3.0, 0.5, 3.0])
        np.testing.assert_array_equal(topk_indices(row, 3), [1, 2, 4])

    def test_filtered_topk_excludes_known(self, engine, prepared):
        mkg, _ = prepared
        h, r, _t = (int(v) for v in mkg.split.train[0])
        known = set(build_csr_filter(mkg.split).row(h, r).tolist())
        assert known
        ids, scores = engine.top_k_tails(h, r, k=engine.num_entities,
                                         filter_known=True)
        assert not (known & set(ids.tolist()))
        assert np.all(scores > -np.inf)

    def test_filtered_and_unfiltered_agree_on_unknowns(self, engine, prepared):
        mkg, _ = prepared
        h, r, _t = (int(v) for v in mkg.split.train[0])
        plain = dict(zip(*map(lambda a: a.tolist(),
                              engine.top_k_tails(h, r, k=engine.num_entities))))
        ids, scores = engine.top_k_tails(h, r, k=engine.num_entities,
                                         filter_known=True)
        for i, s in zip(ids.tolist(), scores.tolist()):
            assert plain[i] == s

    def test_topk_heads_uses_inverse_convention(self, engine, transe):
        ids, scores = engine.top_k_heads(3, 1, k=4)
        row = transe.predict_tails(np.array([3]),
                                   np.array([1 + engine.num_relations]))[0]
        np.testing.assert_array_equal(scores, row[ids])

    def test_topk_heads_rejects_inverse_ids(self, engine):
        with pytest.raises(ValueError, match="original relation id"):
            engine.top_k_heads(0, engine.num_relations, k=3)

    def test_topk_heads_filter_known_excludes_known_heads(self, engine, prepared):
        """Head-side filtering works through the inverse-relation row."""
        mkg, _ = prepared
        _h, r, t = (int(v) for v in mkg.split.train[0])
        inverse = r + engine.num_relations
        known = set(build_csr_filter(mkg.split).row(t, inverse).tolist())
        assert known
        ids, scores = engine.top_k_heads(t, r, k=engine.num_entities,
                                         filter_known=True)
        assert not (known & set(ids.tolist()))
        # Survivors keep the scores of the unfiltered inverse-relation query.
        plain_ids, plain_scores = engine.top_k_heads(t, r,
                                                     k=engine.num_entities)
        lookup = dict(zip(plain_ids.tolist(), plain_scores.tolist()))
        for i, s in zip(ids.tolist(), scores.tolist()):
            assert lookup[i] == s


class TestTopKIndices:
    def test_k_at_least_num_entities_returns_full_ranking(self):
        row = np.array([0.5, 2.0, -1.0])
        for k in (3, 4, 100):
            np.testing.assert_array_equal(topk_indices(row, k), [1, 0, 2])

    def test_all_tie_row_ranks_by_ascending_id(self):
        row = np.full(6, 1.25)
        np.testing.assert_array_equal(topk_indices(row, 4), [0, 1, 2, 3])
        np.testing.assert_array_equal(topk_indices(row, 10), np.arange(6))

    def test_all_filtered_row_is_empty(self):
        row = np.full(5, -np.inf)
        assert topk_indices(row, 3).shape == (0,)
        assert topk_indices(row, 3).dtype == np.int64

    def test_nonpositive_k(self):
        assert topk_indices(np.array([1.0, 2.0]), 0).shape == (0,)


class TestScoreTriples:
    def test_parity_with_predict_tails(self, engine, transe, prepared):
        mkg, _ = prepared
        triples = mkg.split.test[:9]
        got = engine.score_triples(triples)
        rows = transe.predict_tails(triples[:, 0], triples[:, 1])
        np.testing.assert_array_equal(
            got, rows[np.arange(len(triples)), triples[:, 2]])

    def test_empty_input(self, engine):
        assert engine.score_triples(np.empty((0, 3))).shape == (0,)

    def test_cold_cache_uses_direct_cells_not_rows(self, engine, prepared):
        """A cache miss scores only the requested cells: no predict_tails
        call, no row-cache population."""
        mkg, _ = prepared
        triples = mkg.split.test[:6]
        engine.score_triples(triples)
        stats = engine.stats()
        assert stats["predict_calls"] == 0
        assert stats["cell_score_calls"] == 1
        assert stats["cells_scored"] == 6
        assert stats["cache"]["size"] == 0

    def test_cached_rows_serve_hits(self, engine, prepared):
        """Triples whose (h, r) row is resident read from the cache and
        only the misses go through the direct-cell path."""
        mkg, _ = prepared
        h, r, t = (int(v) for v in mkg.split.test[0])
        engine.top_k_tails(h, r, k=3)          # primes the (h, r) row
        before = engine.stats()["cells_scored"]
        other = mkg.split.test[1]
        got = engine.score_triples(np.array([[h, r, t], list(other)]))
        stats = engine.stats()
        assert stats["cells_scored"] == before + 1  # only the uncached triple
        assert stats["cache"]["hits"] == 1
        row = engine.scores([h], [r])[0]
        assert got[0] == row[t]

    def test_row_fallback_for_models_without_score_cells(self, transe, prepared):
        """Models lacking the direct path keep the original row-scoring
        behaviour (and populate the row cache)."""
        mkg, _ = prepared

        class RowOnly:
            predict_tails = staticmethod(transe.predict_tails)

        engine = PredictionEngine(RowOnly(), mkg.split, cache_size=8)
        triples = mkg.split.test[:4]
        got = engine.score_triples(triples)
        stats = engine.stats()
        assert stats["predict_calls"] == 1
        assert stats["cell_score_calls"] == 0
        assert stats["cache"]["size"] > 0
        rows = transe.predict_tails(triples[:, 0], triples[:, 1])
        np.testing.assert_array_equal(
            got, rows[np.arange(len(triples)), triples[:, 2]])


class TestCache:
    def test_hit_miss_counters(self, engine):
        engine.top_k_tails(4, 0, k=3)
        engine.top_k_tails(4, 0, k=5)
        stats = engine.stats()
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["hit_rate"] == 0.5
        assert stats["predict_calls"] == 1  # second query never hit the model

    def test_batch_dedupes_before_model_call(self, engine):
        heads = np.array([1, 1, 2, 2, 1])
        rels = np.array([0, 0, 0, 0, 0])
        engine.scores(heads, rels)
        assert engine.stats()["predict_calls"] == 1
        assert engine.stats()["cache"]["misses"] == 2  # (1,0) and (2,0)
        assert engine.stats()["cache"]["hits"] == 3

    def test_eviction_bounds_cache(self, transe, prepared):
        mkg, _ = prepared
        engine = PredictionEngine(transe, mkg.split, cache_size=4)
        for h in range(10):
            engine.top_k_tails(h, 0, k=1)
        stats = engine.stats()
        assert stats["cache"]["size"] == 4
        assert stats["cache"]["evictions"] == 6

    def test_entries_gauge_tracks_evictions(self, transe, prepared):
        """The serve_cache_entries gauge must stay truthful after the
        cache fills: evictions update it, not just inserts."""
        mkg, _ = prepared
        engine = PredictionEngine(transe, mkg.split, cache_size=3)
        gauge = engine.metrics.gauge("serve_cache_entries", "")
        for h in range(3):
            engine.top_k_tails(h, 0, k=1)
        assert gauge.value == 3
        for h in range(3, 9):
            engine.top_k_tails(h, 0, k=1)
        assert gauge.value == 3  # evictions kept it at capacity, not 9
        assert len(engine._cache) == 3

    def test_hit_rate_gauge_and_stats_agree(self, engine):
        gauge = engine.metrics.gauge("serve_cache_hit_rate", "")
        engine.top_k_tails(6, 0, k=2)
        assert gauge.value == 0.0
        engine.top_k_tails(6, 0, k=2)
        engine.top_k_tails(6, 0, k=2)
        stats = engine.stats()["cache"]
        assert stats["lookups"] == 3
        assert stats["hit_rate"] == pytest.approx(2 / 3, abs=1e-4)
        assert gauge.value == pytest.approx(stats["hit_rate"], abs=1e-4)

    def test_cached_row_is_not_aliased(self, engine, transe):
        ids, scores = engine.top_k_tails(5, 0, k=3, filter_known=False)
        # Mutating a filtered copy must not corrupt later unfiltered reads.
        engine.top_k_tails(5, 0, k=3, filter_known=True)
        ids2, scores2 = engine.top_k_tails(5, 0, k=3)
        np.testing.assert_array_equal(ids, ids2)
        np.testing.assert_array_equal(scores, scores2)


class TestBundleConstruction:
    def test_from_bundle_parity(self, transe_bundle, transe):
        engine = PredictionEngine.from_bundle(transe_bundle)
        assert engine.model_name == "TransE"
        ids, scores = engine.top_k_tails(0, 0, k=4)
        row = transe.predict_tails(np.array([0]), np.array([0]))[0]
        np.testing.assert_array_equal(scores, row[ids])
