"""Prediction engine: top-k parity, filtering, caching, score_triples."""

import numpy as np
import pytest

from repro.eval import build_csr_filter
from repro.serve import PredictionEngine, topk_indices


class TestTopK:
    def test_topk_matches_direct_predict(self, engine, transe):
        ids, scores = engine.top_k_tails(2, 0, k=5)
        row = transe.predict_tails(np.array([2]), np.array([0]))[0]
        ref = np.argsort(-row, kind="stable")[:5]
        np.testing.assert_array_equal(ids, ref)
        np.testing.assert_array_equal(scores, row[ids])  # bit-identical

    def test_tie_break_is_ascending_id(self):
        row = np.array([1.0, 3.0, 3.0, 0.5, 3.0])
        np.testing.assert_array_equal(topk_indices(row, 3), [1, 2, 4])

    def test_filtered_topk_excludes_known(self, engine, prepared):
        mkg, _ = prepared
        h, r, _t = (int(v) for v in mkg.split.train[0])
        known = set(build_csr_filter(mkg.split).row(h, r).tolist())
        assert known
        ids, scores = engine.top_k_tails(h, r, k=engine.num_entities,
                                         filter_known=True)
        assert not (known & set(ids.tolist()))
        assert np.all(scores > -np.inf)

    def test_filtered_and_unfiltered_agree_on_unknowns(self, engine, prepared):
        mkg, _ = prepared
        h, r, _t = (int(v) for v in mkg.split.train[0])
        plain = dict(zip(*map(lambda a: a.tolist(),
                              engine.top_k_tails(h, r, k=engine.num_entities))))
        ids, scores = engine.top_k_tails(h, r, k=engine.num_entities,
                                         filter_known=True)
        for i, s in zip(ids.tolist(), scores.tolist()):
            assert plain[i] == s

    def test_topk_heads_uses_inverse_convention(self, engine, transe):
        ids, scores = engine.top_k_heads(3, 1, k=4)
        row = transe.predict_tails(np.array([3]),
                                   np.array([1 + engine.num_relations]))[0]
        np.testing.assert_array_equal(scores, row[ids])

    def test_topk_heads_rejects_inverse_ids(self, engine):
        with pytest.raises(ValueError, match="original relation id"):
            engine.top_k_heads(0, engine.num_relations, k=3)


class TestScoreTriples:
    def test_parity_with_predict_tails(self, engine, transe, prepared):
        mkg, _ = prepared
        triples = mkg.split.test[:9]
        got = engine.score_triples(triples)
        rows = transe.predict_tails(triples[:, 0], triples[:, 1])
        np.testing.assert_array_equal(
            got, rows[np.arange(len(triples)), triples[:, 2]])

    def test_empty_input(self, engine):
        assert engine.score_triples(np.empty((0, 3))).shape == (0,)


class TestCache:
    def test_hit_miss_counters(self, engine):
        engine.top_k_tails(4, 0, k=3)
        engine.top_k_tails(4, 0, k=5)
        stats = engine.stats()
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["hit_rate"] == 0.5
        assert stats["predict_calls"] == 1  # second query never hit the model

    def test_batch_dedupes_before_model_call(self, engine):
        heads = np.array([1, 1, 2, 2, 1])
        rels = np.array([0, 0, 0, 0, 0])
        engine.scores(heads, rels)
        assert engine.stats()["predict_calls"] == 1
        assert engine.stats()["cache"]["misses"] == 2  # (1,0) and (2,0)
        assert engine.stats()["cache"]["hits"] == 3

    def test_eviction_bounds_cache(self, transe, prepared):
        mkg, _ = prepared
        engine = PredictionEngine(transe, mkg.split, cache_size=4)
        for h in range(10):
            engine.top_k_tails(h, 0, k=1)
        stats = engine.stats()
        assert stats["cache"]["size"] == 4
        assert stats["cache"]["evictions"] == 6

    def test_cached_row_is_not_aliased(self, engine, transe):
        ids, scores = engine.top_k_tails(5, 0, k=3, filter_known=False)
        # Mutating a filtered copy must not corrupt later unfiltered reads.
        engine.top_k_tails(5, 0, k=3, filter_known=True)
        ids2, scores2 = engine.top_k_tails(5, 0, k=3)
        np.testing.assert_array_equal(ids, ids2)
        np.testing.assert_array_equal(scores, scores2)


class TestBundleConstruction:
    def test_from_bundle_parity(self, transe_bundle, transe):
        engine = PredictionEngine.from_bundle(transe_bundle)
        assert engine.model_name == "TransE"
        ids, scores = engine.top_k_tails(0, 0, k=4)
        row = transe.predict_tails(np.array([0]), np.array([0]))[0]
        np.testing.assert_array_equal(scores, row[ids])
