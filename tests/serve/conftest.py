"""Shared tiny fixtures for the serving-subsystem tests."""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.serve import PredictionEngine, save_bundle


@pytest.fixture(scope="session")
def prepared():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.12))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    return mkg, feats


@pytest.fixture(scope="session")
def transe(prepared):
    """An (untrained but deterministic) TransE model over the tiny KG."""
    mkg, feats = prepared
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(1), dim=16)
    return model


@pytest.fixture(scope="session")
def transe_bundle(prepared, transe, tmp_path_factory):
    mkg, feats = prepared
    path = str(tmp_path_factory.mktemp("bundles") / "transe")
    save_bundle(path, transe, "TransE", mkg.split, feats, dim=16)
    return path


@pytest.fixture()
def engine(transe, prepared):
    mkg, _ = prepared
    return PredictionEngine(transe, mkg.split, model_name="TransE", cache_size=32)
