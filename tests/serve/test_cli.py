"""CLI (`python -m repro.serve`) and the runner's --export-bundle hook."""

import json
import os

import numpy as np
import pytest

from repro.experiments import get_scale, train_model
from repro.experiments.runner import set_export_dir
from repro.serve import load_bundle
from repro.serve.cli import main


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    """Run `serve export` once for the whole module (trains a tiny model)."""
    path = str(tmp_path_factory.mktemp("cli") / "transe.bundle")
    code = main(["--log-level", "warning", "export", "--model", "TransE",
                 "--dataset", "drkg-mm", "--scale", "smoke", "--epochs", "1",
                 "--out", path])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def exported_ann(tmp_path_factory):
    """`serve export --ann` once for the module (index embedded)."""
    path = str(tmp_path_factory.mktemp("cli") / "transe_ann.bundle")
    code = main(["--log-level", "warning", "export", "--model", "TransE",
                 "--dataset", "drkg-mm", "--scale", "smoke", "--epochs", "1",
                 "--out", path, "--ann", "--ann-store", "int8"])
    assert code == 0
    return path


class TestExport:
    def test_bundle_written_and_loadable(self, exported, capsys):
        bundle = load_bundle(exported)
        assert bundle.model_name == "TransE"
        assert bundle.manifest["extra"]["scale"] == "smoke"
        assert "MRR" in bundle.manifest["extra"]["test_metrics"]

    def test_unknown_model_fails_fast_with_names(self, tmp_path):
        with pytest.raises(ValueError, match="TransE"):
            main(["export", "--model", "Nope", "--out", str(tmp_path / "b")])


class TestQuery:
    def test_tail_query_json(self, exported, capsys):
        bundle = load_bundle(exported)
        head = bundle.entities.name(0)
        rel = bundle.relations.name(0)
        code = main(["--log-level", "warning", "query", "--bundle", exported,
                     "--head", head, "--relation", rel, "--k", "3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["direction"] == "tail"
        assert len(payload["results"]) == 3
        engine_model = bundle.build_model()
        row = engine_model.predict_tails(np.array([0]), np.array([0]))[0]
        assert payload["results"][0]["score"] == float(row.max())

    def test_head_query_text_output(self, exported, capsys):
        bundle = load_bundle(exported)
        code = main(["--log-level", "warning", "query", "--bundle", exported,
                     "--tail", bundle.entities.name(1),
                     "--relation", "0", "--k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "head-prediction" in out


class TestAnnFlags:
    def test_export_embeds_index_and_reports_it(self, exported_ann, capsys):
        bundle = load_bundle(exported_ann)
        assert bundle.manifest["ann"]["store"] == "int8"
        assert bundle.ann_payload() is not None

    def test_approx_query_matches_exact_at_full_probe(self, exported_ann,
                                                      capsys):
        bundle = load_bundle(exported_ann)
        head = bundle.entities.name(0)
        rel = bundle.relations.name(0)
        nlist = bundle.manifest["ann"]["nlist"]
        base = ["--log-level", "warning", "query", "--bundle", exported_ann,
                "--head", head, "--relation", rel, "--k", "3", "--json"]
        assert main(base) == 0
        exact = json.loads(capsys.readouterr().out)
        assert main(base + ["--approx", "--nprobe", str(nlist)]) == 0
        approx = json.loads(capsys.readouterr().out)
        assert approx["approx"] is True
        assert [r["id"] for r in approx["results"]] == \
            [r["id"] for r in exact["results"]]

    def test_approx_query_without_index_fails(self, exported):
        from repro.serve import AnnError

        with pytest.raises(AnnError, match="no ANN artifact"):
            main(["--log-level", "warning", "query", "--bundle", exported,
                  "--head", "0", "--relation", "0", "--approx"])

    def test_both_anchors_rejected(self, exported):
        with pytest.raises(SystemExit):
            main(["query", "--bundle", exported, "--head", "a", "--tail", "b",
                  "--relation", "0"])


class TestInspect:
    def test_manifest_printed(self, exported, capsys):
        code = main(["--log-level", "warning", "inspect", "--bundle", exported])
        assert code == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["model"] == "TransE"
        assert manifest["format_version"] >= 1


class TestRunnerHook:
    def test_train_model_export_bundle_param(self, tmp_path):
        scale = get_scale("smoke")
        out = str(tmp_path / "direct")
        result = train_model("TransE", "drkg-mm", scale, seed=0, epochs=1,
                             export_bundle=out)
        bundle = load_bundle(out)
        clone = bundle.build_model()
        heads, rels = np.array([0]), np.array([0])
        np.testing.assert_array_equal(
            clone.predict_tails(heads, rels),
            result.model.predict_tails(heads, rels))

    def test_set_export_dir_exports_even_cached_runs(self, tmp_path):
        scale = get_scale("smoke")
        set_export_dir(str(tmp_path))
        try:
            train_model("TransE", "drkg-mm", scale, seed=0, epochs=1)
        finally:
            set_export_dir(None)
        expected = os.path.join(str(tmp_path), "drkg-mm_TransE_smoke_seed0")
        assert load_bundle(expected).model_name == "TransE"
