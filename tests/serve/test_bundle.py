"""Checkpoint bundles: round-trip parity, validation, both layouts."""

import json
import os

import numpy as np
import pytest

from repro.baselines import MODEL_REGISTRY, build_model
from repro.serve import BUNDLE_VERSION, BundleError, load_bundle, save_bundle


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_every_registry_model(self, prepared, tmp_path, name):
        """save -> load -> build_model reproduces predict_tails at 1e-6."""
        mkg, feats = prepared
        model, _ = build_model(name, mkg, feats, np.random.default_rng(1), dim=16)
        path = str(tmp_path / "bundle")
        save_bundle(path, model, name, mkg.split, feats, dim=16)
        clone = load_bundle(path).build_model()
        heads = np.array([0, 3, 5])
        rels = np.array([0, 1, 2 + mkg.num_relations])  # one inverse query
        np.testing.assert_allclose(
            clone.predict_tails(heads, rels),
            model.predict_tails(heads, rels),
            atol=1e-6, err_msg=name,
        )

    def test_single_file_layout(self, prepared, transe, tmp_path):
        mkg, feats = prepared
        path = str(tmp_path / "bundle.npz")
        save_bundle(path, transe, "TransE", mkg.split, feats, dim=16)
        assert os.path.isfile(path)
        bundle = load_bundle(path)
        clone = bundle.build_model()
        heads, rels = np.array([1]), np.array([0])
        np.testing.assert_array_equal(clone.predict_tails(heads, rels),
                                      transe.predict_tails(heads, rels))

    def test_bundle_carries_vocab_and_split(self, transe_bundle, prepared):
        mkg, _ = prepared
        bundle = load_bundle(transe_bundle)
        assert bundle.entities.names() == mkg.graph.entities.names()
        assert bundle.relations.names() == mkg.graph.relations.names()
        np.testing.assert_array_equal(bundle.split.train, mkg.split.train)
        np.testing.assert_array_equal(bundle.split.test, mkg.split.test)
        assert bundle.manifest["dataset"]["num_entities"] == mkg.num_entities

    def test_came_config_round_trips(self, prepared, tmp_path):
        mkg, feats = prepared
        model, _ = build_model("CamE", mkg, feats, np.random.default_rng(2), dim=16)
        path = str(tmp_path / "came")
        save_bundle(path, model, "CamE", mkg.split, feats, dim=16)
        bundle = load_bundle(path)
        assert bundle.manifest["config"]["entity_dim"] == model.config.entity_dim
        clone = bundle.build_model()
        assert clone.config == model.config


class TestValidation:
    def test_missing_state_key_raises_with_names(self, transe_bundle):
        bundle = load_bundle(transe_bundle)
        del bundle.state["entity_embedding.weight"]
        with pytest.raises(BundleError, match="entity_embedding.weight"):
            bundle.build_model()

    def test_lenient_build_tolerates_missing_key(self, transe_bundle, transe):
        bundle = load_bundle(transe_bundle)
        del bundle.state["relation_embedding.weight"]
        clone = bundle.build_model(strict=False)
        np.testing.assert_array_equal(clone.entity_embedding.weight.data,
                                      transe.entity_embedding.weight.data)

    def test_manifest_state_mismatch_detected(self, prepared, transe, tmp_path):
        mkg, feats = prepared
        path = str(tmp_path / "bundle")
        save_bundle(path, transe, "TransE", mkg.split, feats, dim=16)
        # Drop one state array on disk so the manifest record disagrees.
        with np.load(os.path.join(path, "state.npz")) as archive:
            state = {n: archive[n] for n in archive.files}
        state.pop("entity_embedding.weight")
        with open(os.path.join(path, "state.npz"), "wb") as handle:
            np.savez(handle, **state)
        with pytest.raises(BundleError, match="missing.*entity_embedding"):
            load_bundle(path)
        assert load_bundle(path, strict=False) is not None

    def test_unsupported_version_raises(self, prepared, transe, tmp_path):
        mkg, feats = prepared
        path = str(tmp_path / "bundle")
        save_bundle(path, transe, "TransE", mkg.split, feats, dim=16)
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = BUNDLE_VERSION + 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(BundleError, match="format_version"):
            load_bundle(path)

    def test_missing_paths_raise(self, tmp_path):
        with pytest.raises(BundleError):
            load_bundle(str(tmp_path / "nope.npz"))
        with pytest.raises(BundleError):
            load_bundle(str(tmp_path))  # dir without manifest

    def test_declared_ann_without_arrays_raises(self, prepared, transe, tmp_path):
        from repro.serve import AnnServing

        mkg, feats = prepared
        path = str(tmp_path / "bundle")
        save_bundle(path, transe, "TransE", mkg.split, feats, dim=16,
                    ann=AnnServing.build(transe))
        os.remove(os.path.join(path, "ann.npz"))
        with pytest.raises(BundleError, match="ANN"):
            load_bundle(path)
        # Lenient load degrades to a plain bundle instead of failing.
        bundle = load_bundle(path, strict=False)
        assert bundle.ann_payload() is None
        assert "ann" not in bundle.manifest

    def test_version_3_written_and_older_versions_still_read(self, transe_bundle):
        bundle = load_bundle(transe_bundle)
        assert bundle.manifest["format_version"] == BUNDLE_VERSION == 3
        assert bundle.ann_payload() is None  # optional artifact absent
        assert bundle.stream_generation == 0  # optional stream state absent
        assert len(bundle.appended) == 0
        manifest_path = os.path.join(transe_bundle, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        try:
            for old_version in (1, 2):
                manifest["format_version"] = old_version
                with open(manifest_path, "w") as handle:
                    json.dump(manifest, handle)
                old = load_bundle(transe_bundle)
                assert old.manifest["format_version"] == old_version
                assert old.stream_generation == 0
        finally:
            manifest["format_version"] = BUNDLE_VERSION
            with open(manifest_path, "w") as handle:
                json.dump(manifest, handle)
