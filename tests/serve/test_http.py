"""HTTP front end: route behavior, parity with the engine, error envelopes."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.serve import MicroBatcher, PredictionEngine, make_server


@pytest.fixture()
def service(transe, prepared):
    mkg, _ = prepared
    engine = PredictionEngine(transe, mkg.split, model_name="TransE")
    batcher = MicroBatcher(engine, max_batch=8, max_delay=0.002)
    server = make_server(engine, batcher, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, engine, mkg
    server.shutdown()
    server.server_close()
    batcher.close()
    thread.join(timeout=5)


def _request(server, method, path, body=None):
    port = server.server_address[1]
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoutes:
    def test_healthz(self, service):
        server, engine, _ = service
        status, payload = _request(server, "GET", "/healthz")
        assert status == 200
        uptime = payload.pop("uptime_seconds")
        assert 0.0 <= uptime < 300.0
        assert payload == {"status": "ok", "model": "TransE",
                           "num_entities": engine.num_entities,
                           "num_relations": engine.num_relations,
                           "version": repro.__version__}

    def test_predict_tails_bit_identical(self, service, transe):
        server, engine, mkg = service
        h, r = int(mkg.split.test[0, 0]), int(mkg.split.test[0, 1])
        status, payload = _request(server, "POST", "/predict", {
            "head": mkg.graph.entities.name(h),
            "relation": mkg.graph.relations.name(r),
            "k": 5,
        })
        assert status == 200
        row = transe.predict_tails(np.array([h]), np.array([r]))[0]
        ref = np.argsort(-row, kind="stable")[:5]
        assert [item["id"] for item in payload["results"]] == ref.tolist()
        assert [item["score"] for item in payload["results"]] == row[ref].tolist()
        assert payload["query"]["direction"] == "tail"

    def test_predict_filtered_bit_identical(self, service, transe):
        server, engine, mkg = service
        h, r = (int(v) for v in mkg.split.train[0, :2])
        status, payload = _request(server, "POST", "/predict", {
            "head": h, "relation": r, "k": engine.num_entities,
            "filter_known": True,
        })
        assert status == 200
        row = transe.predict_tails(np.array([h]), np.array([r]))[0].copy()
        known = engine.filter.row(h, r)
        row[known] = -np.inf
        ids = [item["id"] for item in payload["results"]]
        assert not (set(known.tolist()) & set(ids))
        assert [item["score"] for item in payload["results"]] == row[ids].tolist()

    def test_predict_heads_direction(self, service, transe):
        server, engine, mkg = service
        t, r = 3, 1
        status, payload = _request(server, "POST", "/predict",
                                   {"tail": t, "relation": r, "k": 4})
        assert status == 200
        assert payload["query"]["direction"] == "head"
        row = transe.predict_tails(np.array([t]),
                                   np.array([r + engine.num_relations]))[0]
        ids = [item["id"] for item in payload["results"]]
        assert [item["score"] for item in payload["results"]] == row[ids].tolist()

    def test_score_triples(self, service, transe):
        server, _, mkg = service
        triples = mkg.split.test[:4]
        status, payload = _request(server, "POST", "/score", {
            "triples": [[int(h), int(r), int(t)] for h, r, t in triples]})
        assert status == 200
        expected = transe.predict_tails(triples[:, 0], triples[:, 1])
        expected = expected[np.arange(len(triples)), triples[:, 2]]
        assert payload["scores"] == expected.tolist()

    def test_metrics_prometheus_exposition(self, service):
        server, _, _ = service
        _request(server, "POST", "/predict", {"head": 0, "relation": 0, "k": 2})
        port = server.server_address[1]
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics",
                                    timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        samples = {}
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
        assert samples["serve_queries_total"] >= 1
        assert samples["serve_predict_seconds_count"] >= 1
        assert samples['http_requests_total{route="/predict",code="200"}'] >= 1
        # cumulative bucket invariant: +Inf bucket equals the count
        assert samples['http_request_seconds_bucket{le="+Inf"}'] == \
            samples["http_request_seconds_count"]

    def test_stats_reports_all_layers(self, service):
        server, _, _ = service
        _request(server, "POST", "/predict", {"head": 0, "relation": 0, "k": 2})
        status, payload = _request(server, "GET", "/stats")
        assert status == 200
        assert payload["server"]["requests"] >= 2
        assert payload["engine"]["queries_served"] >= 1
        assert payload["batcher"]["requests_processed"] >= 1
        assert payload["batcher"]["batches_processed"] >= 1
        assert "hit_rate" in payload["engine"]["cache"]


class TestErrors:
    def test_unknown_route_404(self, service):
        server, _, _ = service
        status, payload = _request(server, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_invalid_json_400(self, service):
        server, _, _ = service
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/predict", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["code"] == "bad_json"

    def test_unknown_entity_with_suggestion(self, service):
        server, _, mkg = service
        near_miss = mkg.graph.entities.name(0)[:-1] + "x"
        status, payload = _request(server, "POST", "/predict",
                                   {"head": near_miss, "relation": 0})
        assert status == 400
        assert payload["error"]["code"] == "unknown_entity"

    def test_head_and_tail_together_rejected(self, service):
        server, _, _ = service
        status, payload = _request(server, "POST", "/predict",
                                   {"head": 0, "tail": 1, "relation": 0})
        assert status == 400
        assert "exactly one" in payload["error"]["message"]

    def test_missing_relation_rejected(self, service):
        server, _, _ = service
        status, payload = _request(server, "POST", "/predict", {"head": 0})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_bad_k_rejected(self, service):
        server, _, _ = service
        status, payload = _request(server, "POST", "/predict",
                                   {"head": 0, "relation": 0, "k": 0})
        assert status == 400

    def test_malformed_triple_rejected(self, service):
        server, _, _ = service
        status, payload = _request(server, "POST", "/score",
                                   {"triples": [[0, 0]]})
        assert status == 400
        assert "triple #0" in payload["error"]["message"]

    def test_errors_counted_in_stats(self, service):
        server, _, _ = service
        _request(server, "GET", "/nope")
        status, payload = _request(server, "GET", "/stats")
        assert payload["server"]["errors"] >= 1
