"""HTTP front end: route behavior, parity with the engine, error envelopes."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.serve import MicroBatcher, PredictionEngine, make_server


@pytest.fixture()
def service(transe, prepared):
    mkg, _ = prepared
    engine = PredictionEngine(transe, mkg.split, model_name="TransE")
    batcher = MicroBatcher(engine, max_batch=8, max_delay=0.002)
    server = make_server(engine, batcher, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, engine, mkg
    server.shutdown()
    server.server_close()
    batcher.close()
    thread.join(timeout=5)


def _request(server, method, path, body=None):
    port = server.server_address[1]
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoutes:
    def test_healthz(self, service):
        server, engine, _ = service
        status, payload = _request(server, "GET", "/healthz")
        assert status == 200
        uptime = payload.pop("uptime_seconds")
        assert 0.0 <= uptime < 300.0
        replicas = payload.pop("replicas")
        assert payload == {"status": "ok", "model": "TransE",
                           "num_entities": engine.num_entities,
                           "num_relations": engine.num_relations,
                           "version": repro.__version__,
                           "bundle": {"version": engine.bundle_version},
                           "ann": {"supports_ann": True, "attached": False},
                           "stream": {"generation": 0}}
        # threaded mode is exactly one in-process replica
        assert len(replicas) == 1
        assert replicas[0]["alive"] is True
        assert replicas[0]["mode"] == "thread"
        assert replicas[0]["rank"] == 0

    def test_healthz_reports_bundle_and_ann(self, transe_bundle):
        """An engine loaded from a bundle reports its format version."""
        from repro.serve.http import ServiceApp

        engine = PredictionEngine.from_bundle(transe_bundle)
        app = ServiceApp(engine)
        status, payload = app.handle("GET", "/healthz", None)
        assert status == 200
        assert payload["bundle"]["version"] == engine.bundle_version
        assert payload["bundle"]["version"] is not None
        assert payload["ann"]["supports_ann"] is True

    def test_predict_tails_bit_identical(self, service, transe):
        server, engine, mkg = service
        h, r = int(mkg.split.test[0, 0]), int(mkg.split.test[0, 1])
        status, payload = _request(server, "POST", "/predict", {
            "head": mkg.graph.entities.name(h),
            "relation": mkg.graph.relations.name(r),
            "k": 5,
        })
        assert status == 200
        row = transe.predict_tails(np.array([h]), np.array([r]))[0]
        ref = np.argsort(-row, kind="stable")[:5]
        assert [item["id"] for item in payload["results"]] == ref.tolist()
        assert [item["score"] for item in payload["results"]] == row[ref].tolist()
        assert payload["query"]["direction"] == "tail"

    def test_predict_filtered_bit_identical(self, service, transe):
        server, engine, mkg = service
        h, r = (int(v) for v in mkg.split.train[0, :2])
        status, payload = _request(server, "POST", "/predict", {
            "head": h, "relation": r, "k": engine.num_entities,
            "filter_known": True,
        })
        assert status == 200
        row = transe.predict_tails(np.array([h]), np.array([r]))[0].copy()
        known = engine.filter.row(h, r)
        row[known] = -np.inf
        ids = [item["id"] for item in payload["results"]]
        assert not (set(known.tolist()) & set(ids))
        assert [item["score"] for item in payload["results"]] == row[ids].tolist()

    def test_predict_heads_direction(self, service, transe):
        server, engine, mkg = service
        t, r = 3, 1
        status, payload = _request(server, "POST", "/predict",
                                   {"tail": t, "relation": r, "k": 4})
        assert status == 200
        assert payload["query"]["direction"] == "head"
        row = transe.predict_tails(np.array([t]),
                                   np.array([r + engine.num_relations]))[0]
        ids = [item["id"] for item in payload["results"]]
        assert [item["score"] for item in payload["results"]] == row[ids].tolist()

    def test_score_triples(self, service, transe):
        server, _, mkg = service
        triples = mkg.split.test[:4]
        status, payload = _request(server, "POST", "/score", {
            "triples": [[int(h), int(r), int(t)] for h, r, t in triples]})
        assert status == 200
        expected = transe.predict_tails(triples[:, 0], triples[:, 1])
        expected = expected[np.arange(len(triples)), triples[:, 2]]
        assert payload["scores"] == expected.tolist()

    def test_metrics_prometheus_exposition(self, service):
        server, _, _ = service
        _request(server, "POST", "/predict", {"head": 0, "relation": 0, "k": 2})
        port = server.server_address[1]
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics",
                                    timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        samples = {}
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
        assert samples["serve_queries_total"] >= 1
        assert samples["serve_predict_seconds_count"] >= 1
        assert samples['http_requests_total{route="/predict",code="200"}'] >= 1
        # cumulative bucket invariant: +Inf bucket equals the count
        assert samples['http_request_seconds_bucket{le="+Inf"}'] == \
            samples["http_request_seconds_count"]

    def test_stats_reports_all_layers(self, service):
        server, _, _ = service
        _request(server, "POST", "/predict", {"head": 0, "relation": 0, "k": 2})
        status, payload = _request(server, "GET", "/stats")
        assert status == 200
        assert payload["server"]["requests"] >= 2
        assert payload["engine"]["queries_served"] >= 1
        assert payload["batcher"]["requests_processed"] >= 1
        assert payload["batcher"]["batches_processed"] >= 1
        assert "hit_rate" in payload["engine"]["cache"]


class TestErrors:
    def test_unknown_route_404(self, service):
        server, _, _ = service
        status, payload = _request(server, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_invalid_json_400(self, service):
        server, _, _ = service
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/predict", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["code"] == "bad_json"

    def test_unknown_entity_with_suggestion(self, service):
        server, _, mkg = service
        near_miss = mkg.graph.entities.name(0)[:-1] + "x"
        status, payload = _request(server, "POST", "/predict",
                                   {"head": near_miss, "relation": 0})
        assert status == 400
        assert payload["error"]["code"] == "unknown_entity"

    def test_head_and_tail_together_rejected(self, service):
        server, _, _ = service
        status, payload = _request(server, "POST", "/predict",
                                   {"head": 0, "tail": 1, "relation": 0})
        assert status == 400
        assert "exactly one" in payload["error"]["message"]

    def test_missing_relation_rejected(self, service):
        server, _, _ = service
        status, payload = _request(server, "POST", "/predict", {"head": 0})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_bad_k_rejected(self, service):
        server, _, _ = service
        status, payload = _request(server, "POST", "/predict",
                                   {"head": 0, "relation": 0, "k": 0})
        assert status == 400

    def test_malformed_triple_rejected(self, service):
        server, _, _ = service
        status, payload = _request(server, "POST", "/score",
                                   {"triples": [[0, 0]]})
        assert status == 400
        assert "triple #0" in payload["error"]["message"]

    def test_errors_counted_in_stats(self, service):
        server, _, _ = service
        _request(server, "GET", "/nope")
        status, payload = _request(server, "GET", "/stats")
        assert payload["server"]["errors"] >= 1


class TestDeadlines:
    """deadline_ms handling on the threaded server (shared with the pool)."""

    def _slow_app(self, engine, delay=0.2):
        import time as _time

        from repro.serve.http import ServiceApp

        class Slow:
            def __getattr__(self, name):
                return getattr(engine, name)

            def top_k_tails(self, *args, **kwargs):
                _time.sleep(delay)
                return engine.top_k_tails(*args, **kwargs)

        return ServiceApp(Slow())

    def test_bad_deadline_rejected(self, engine):
        from repro.serve.http import ServiceApp

        app = ServiceApp(engine)
        for bad in (-1, 0, True, "soon"):
            status, payload = app.handle(
                "POST", "/predict",
                {"head": 0, "relation": 0, "deadline_ms": bad})
            assert status == 400, bad
            assert payload["error"]["code"] == "bad_request"

    def test_deadline_exceeded_during_scoring_504(self, engine):
        app = self._slow_app(engine, delay=0.2)
        status, payload = app.handle(
            "POST", "/predict",
            {"head": 0, "relation": 0, "k": 3, "deadline_ms": 50})
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"

    def test_expired_deadline_rejected_before_scoring(self, engine):
        import time as _time

        from repro.serve.http import ServiceApp

        app = ServiceApp(engine)
        status, payload = app.handle("POST", "/predict",
                                     {"head": 0, "relation": 0, "k": 3},
                                     deadline=_time.monotonic() - 1.0)
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"
        assert "before processing" in payload["error"]["message"]

    def test_generous_deadline_succeeds(self, engine):
        from repro.serve.http import ServiceApp

        app = ServiceApp(engine)
        status, payload = app.handle(
            "POST", "/predict",
            {"head": 0, "relation": 0, "k": 3, "deadline_ms": 30_000})
        assert status == 200
        assert len(payload["results"]) == 3

    def test_batcher_closed_maps_to_503(self, engine):
        from repro.serve import MicroBatcher
        from repro.serve.http import ServiceApp

        batcher = MicroBatcher(engine)
        app = ServiceApp(engine, batcher)
        batcher.close()
        status, payload = app.handle("POST", "/predict",
                                     {"head": 0, "relation": 0, "k": 3})
        assert status == 503
        assert payload["error"]["code"] == "shutting_down"


class TestEnvelopeStorm:
    def test_oversized_k_rejected(self, service):
        from repro.serve.http import MAX_TOP_K

        server, _, _ = service
        status, payload = _request(server, "POST", "/predict",
                                   {"head": 0, "relation": 0,
                                    "k": MAX_TOP_K + 1})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert str(MAX_TOP_K) in payload["error"]["message"]

    def test_concurrent_error_envelopes(self, service):
        """Malformed requests racing valid ones always get clean envelopes."""
        server, _, mkg = service
        port = server.server_address[1]
        good = {"head": 0, "relation": 0, "k": 3}
        cases = [
            (b"{not json", 400, "bad_json"),
            (json.dumps({"head": "no-such", "relation": 0}).encode(), 400,
             "unknown_entity"),
            (json.dumps({"head": 0, "relation": 0, "k": 99_999}).encode(),
             400, "bad_request"),
            (json.dumps({"head": 0, "relation": 0,
                         "deadline_ms": -4}).encode(), 400, "bad_request"),
            (json.dumps(good).encode(), 200, None),
        ]
        results = []

        def fire(raw, expected_status, expected_code):
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/predict", data=raw, method="POST",
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    got = response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                got = error.code, json.loads(error.read())
            results.append((got, expected_status, expected_code))

        threads = [threading.Thread(target=fire, args=case)
                   for case in cases * 5]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == len(cases) * 5
        for (status, payload), expected_status, expected_code in results:
            assert status == expected_status
            if expected_code is None:
                assert len(payload["results"]) == 3
            else:
                assert set(payload["error"]) == {"code", "message"}
                assert payload["error"]["code"] == expected_code
        # The server is still healthy after the storm.
        status, payload = _request(server, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"


class TestTracing:
    """Request-scoped trace context on the threaded tier."""

    @pytest.fixture(autouse=True)
    def _tracing_off(self):
        from repro.obs import disable_tracing, get_tracer

        get_tracer().reset()
        yield
        disable_tracing()

    def _request_headers(self, server, method, path, body=None, headers=None):
        port = server.server_address[1]
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", data=data, method=method,
            headers={"Content-Type": "application/json", **(headers or {})})
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return (response.status, json.loads(response.read()),
                        dict(response.headers))
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)

    def test_x_trace_id_header_matches_recorded_span(self, service, tmp_path):
        from repro.obs import disable_tracing, enable_tracing, read_trace

        server, _, _ = service
        path = str(tmp_path / "serve.jsonl")
        enable_tracing(path, flush_every=1)
        status, _, headers = self._request_headers(
            server, "POST", "/predict", {"head": 0, "relation": 0, "k": 3})
        assert status == 200
        trace_id = headers.get("X-Trace-Id")
        assert trace_id and len(trace_id) == 32
        disable_tracing()
        requests = [e for e in read_trace(path)
                    if e["name"] == "serve.request"]
        assert [e["trace_id"] for e in requests] == [trace_id]
        assert requests[0]["route"] == "/predict"
        assert requests[0]["parent_id"] is None

    def test_client_traceparent_is_honored(self, service, tmp_path):
        from repro.obs import disable_tracing, enable_tracing, read_trace

        server, _, _ = service
        path = str(tmp_path / "serve.jsonl")
        enable_tracing(path, flush_every=1)
        supplied_trace, supplied_span = "ab" * 16, "cd" * 8
        status, _, headers = self._request_headers(
            server, "POST", "/predict", {"head": 0, "relation": 0, "k": 3},
            headers={"traceparent": f"00-{supplied_trace}-{supplied_span}-01"})
        assert status == 200
        assert headers.get("X-Trace-Id") == supplied_trace
        disable_tracing()
        [span] = [e for e in read_trace(path) if e["name"] == "serve.request"]
        assert span["trace_id"] == supplied_trace
        assert span["parent_id"] == supplied_span

    def test_error_envelope_carries_trace_id(self, service, tmp_path):
        from repro.obs import enable_tracing

        server, _, _ = service
        enable_tracing(str(tmp_path / "serve.jsonl"), flush_every=1)
        status, payload, headers = self._request_headers(
            server, "POST", "/predict", {"head": 0})  # missing relation
        assert status == 400
        assert payload["error"]["trace_id"] == headers["X-Trace-Id"]

    def test_disabled_tracing_leaves_envelopes_clean(self, service):
        server, _, _ = service
        status, payload, headers = self._request_headers(
            server, "POST", "/predict", {"head": 0})
        assert status == 400
        assert "X-Trace-Id" not in headers
        assert "trace_id" not in payload["error"]

    def test_request_span_carries_engine_attrs(self, service, tmp_path):
        """/score runs on the request thread, so the engine hangs its
        cache counters off the serve.request span itself."""
        from repro.obs import disable_tracing, enable_tracing, read_trace

        server, _, _ = service
        path = str(tmp_path / "serve.jsonl")
        enable_tracing(path, flush_every=1)
        status, _, _ = self._request_headers(
            server, "POST", "/score", {"triples": [[0, 0, 1]]})
        assert status == 200
        # warm the (0, 0) score row via the row-caching predict path
        status, _, _ = self._request_headers(
            server, "POST", "/predict", {"head": 0, "relation": 0, "k": 3})
        assert status == 200
        status, _, _ = self._request_headers(
            server, "POST", "/score", {"triples": [[0, 0, 1]]})
        assert status == 200
        disable_tracing()
        spans = [e for e in read_trace(path)
                 if e["name"] == "serve.request" and e["route"] == "/score"]
        assert len(spans) == 2
        assert spans[0]["cache_misses"] == 1  # cold: per-cell path
        assert spans[1]["cache_hits"] == 1    # cached row from /predict

    def test_batched_predicts_link_their_traces(self, service, tmp_path):
        """The serve.batch span runs on the batcher thread (its own
        trace) and records the coalesced requests' trace ids instead."""
        from repro.obs import disable_tracing, enable_tracing, read_trace

        server, _, _ = service
        path = str(tmp_path / "serve.jsonl")
        enable_tracing(path, flush_every=1)
        status, _, headers = self._request_headers(
            server, "POST", "/predict", {"head": 0, "relation": 0, "k": 3})
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        disable_tracing()
        batches = [e for e in read_trace(path) if e["name"] == "serve.batch"]
        assert any(trace_id in e.get("trace_links", "") for e in batches)


class TestSLO:
    def test_stats_exposes_slo_block(self, service):
        server, _, _ = service
        _request(server, "POST", "/predict", {"head": 0, "relation": 0, "k": 3})
        status, payload = _request(server, "GET", "/stats")
        assert status == 200
        slo = payload["slo"]
        assert slo["scope"] == "serve"
        route = slo["routes"]["/predict"]
        assert route["requests"] >= 1
        assert 0.0 <= route["latency_attainment"] <= 1.0
        assert route["availability"] == 1.0

    def test_slo_gauges_on_metrics(self, service):
        server, _, _ = service
        _request(server, "POST", "/predict", {"head": 0, "relation": 0, "k": 3})
        port = server.server_address[1]
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=30) as response:
            text = response.read().decode()
        assert "slo_latency_attainment" in text
        assert 'route="/predict",scope="serve"' in text
        assert "slo_error_burn_rate" in text
