"""Metrics registry: histogram math, thread safety, Prometheus rendering."""

import math
import threading

import numpy as np
import pytest

from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry, render_prometheus


class TestHistogram:
    def test_bucket_counts_match_numpy_reference(self):
        rng = np.random.default_rng(0)
        samples = rng.gamma(2.0, 0.05, size=2000)
        hist = Histogram(DEFAULT_BUCKETS)
        for s in samples:
            hist.observe(s)
        # numpy reference: cumulative count of samples <= each bound
        # (Prometheus `le` buckets are inclusive upper bounds)
        expected = [int(np.sum(samples <= edge)) for edge in DEFAULT_BUCKETS]
        expected.append(len(samples))
        assert hist.cumulative() == expected
        assert hist.count == len(samples)
        assert hist.sum == pytest.approx(samples.sum())
        assert hist.mean == pytest.approx(samples.mean())

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.95, 0.99])
    def test_quantile_close_to_numpy_within_bucket_width(self, q):
        rng = np.random.default_rng(1)
        samples = rng.uniform(0.0, 1.0, size=5000)
        hist = Histogram(np.linspace(0.05, 1.0, 20))
        for s in samples:
            hist.observe(s)
        estimate = hist.quantile(q)
        exact = float(np.quantile(samples, q))
        # linear interpolation inside a bucket is exact up to one bucket
        # width for a uniform distribution
        assert abs(estimate - exact) < 0.05 + 1e-9

    def test_quantile_edge_cases(self):
        hist = Histogram((1.0, 2.0))
        assert math.isnan(hist.quantile(0.5))
        hist.observe(10.0)  # lands in +Inf bucket
        assert hist.quantile(0.99) == 2.0  # clamped to highest finite edge
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, math.inf))


class TestRegistry:
    def test_registration_is_idempotent_and_type_checked(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "help text")
        assert registry.counter("hits_total") is counter
        with pytest.raises(ValueError):
            registry.gauge("hits_total")
        with pytest.raises(ValueError):
            registry.counter("hits_total", labels=("route",))

    def test_counter_monotonicity(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_children_and_total(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labels=("route", "code"))
        family.labels(route="/a", code=200).inc(3)
        family.labels(route="/b", code=500).inc()
        assert family.labels(route="/a", code=200).value == 3
        assert family.total() == 4
        with pytest.raises(ValueError):
            family.labels(route="/a")  # missing label
        with pytest.raises(ValueError):
            family.inc()  # labeled family has no sole child

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("spins_total")
        hist = registry.histogram("spin_size", buckets=(0.5, 1.5, 2.5))
        n_threads, n_iter = 8, 2000

        def spin():
            for i in range(n_iter):
                counter.inc()
                hist.observe(i % 3)

        threads = [threading.Thread(target=spin) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_iter
        assert hist.count == n_threads * n_iter
        assert hist.cumulative()[-1] == n_threads * n_iter


class TestPrometheusRender:
    def test_exposition_format_parses(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs run").inc(7)
        registry.gauge("queue_depth").set(3)
        family = registry.counter("http_requests_total", labels=("route",))
        family.labels(route='/pre"dict').inc()
        hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)

        text = render_prometheus(registry)
        assert text.endswith("\n")
        samples, types = {}, {}
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split(" ")
                types[name] = kind
            elif line and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
        assert types == {"jobs_total": "counter", "queue_depth": "gauge",
                         "http_requests_total": "counter",
                         "latency_seconds": "histogram"}
        assert samples["jobs_total"] == 7
        assert samples["queue_depth"] == 3
        assert samples['http_requests_total{route="/pre\\"dict"}'] == 1
        assert samples['latency_seconds_bucket{le="0.1"}'] == 1
        assert samples['latency_seconds_bucket{le="1"}'] == 2
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 3
        assert samples["latency_seconds_count"] == 3
        assert samples["latency_seconds_sum"] == pytest.approx(5.55)

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.histogram("b_seconds", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["a_total"]["series"][0]["value"] == 1
        assert parsed["b_seconds"]["series"][0]["count"] == 1


class TestMerge:
    """Registry.merge: the exact dual of snapshot (repro.dist fan-in)."""

    def test_counters_sum_across_snapshots(self):
        worker_a, worker_b, parent = (MetricsRegistry() for _ in range(3))
        worker_a.counter("batches_total").inc(3)
        worker_b.counter("batches_total").inc(4)
        parent.counter("batches_total").inc(1)
        parent.merge(worker_a.snapshot())
        parent.merge(worker_b.snapshot())
        assert parent.get("batches_total").total() == 8

    def test_gauge_takes_incoming_value(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        parent.gauge("world_size").set(4)
        worker.gauge("world_size").set(3)
        parent.merge(worker.snapshot())
        assert parent.get("world_size")._sole().value == 3

    def test_histograms_add_bucketwise(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        edges = (1.0, 2.0, 5.0)
        for value in (0.5, 1.5, 10.0):
            parent.histogram("step_seconds", buckets=edges).observe(value)
        for value in (0.7, 4.0):
            worker.histogram("step_seconds", buckets=edges).observe(value)
        parent.merge(worker.snapshot())
        hist = parent.get("step_seconds")._sole()
        # hand-computed cumulative counts: <=1: {0.5, 0.7}, <=2: +1.5,
        # <=5: +4.0, +Inf: +10.0
        assert hist.cumulative() == [2, 3, 4, 5]
        assert hist.count == 5
        assert hist.sum == pytest.approx(0.5 + 1.5 + 10.0 + 0.7 + 4.0)

    def test_merge_is_idempotent_on_counts_not_values(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.counter("n").inc(2)
        snap = worker.snapshot()
        parent.merge(snap)
        parent.merge(snap)  # merging the same snapshot twice double-counts
        assert parent.get("n").total() == 4

    def test_unseen_family_registered_on_the_fly(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        worker.counter("c", labels=("rank",)).labels(rank=3).inc(2)
        parent.merge(worker.snapshot())
        assert parent.get("h")._sole().count == 1
        assert parent.get("h")._sole().edges == (1.0, 2.0)
        assert parent.get("c").labels(rank=3).value == 2

    def test_labeled_children_merge_independently(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        for rank in (0, 1):
            worker.counter("c", labels=("rank",)).labels(rank=rank).inc(rank + 1)
        parent.counter("c", labels=("rank",)).labels(rank=0).inc(10)
        parent.merge(worker.snapshot())
        assert parent.get("c").labels(rank=0).value == 11
        assert parent.get("c").labels(rank=1).value == 2

    def test_bucket_mismatch_rejected(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        parent.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())

    def test_type_mismatch_rejected(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.counter("m").inc()
        parent.gauge("m").set(1)
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())

    def test_unknown_type_rejected(self):
        parent = MetricsRegistry()
        with pytest.raises(ValueError):
            parent.merge({"m": {"type": "summary", "series": []}})

    def test_round_trip_through_json(self):
        import json

        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
        worker.counter("c").inc(3)
        snap = json.loads(json.dumps(worker.snapshot()))
        parent.merge(snap)
        assert parent.get("c").total() == 3
        assert parent.get("h")._sole().cumulative() == [0, 1, 1]
