"""Metrics registry: histogram math, thread safety, Prometheus rendering."""

import math
import threading

import numpy as np
import pytest

from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry, render_prometheus


class TestHistogram:
    def test_bucket_counts_match_numpy_reference(self):
        rng = np.random.default_rng(0)
        samples = rng.gamma(2.0, 0.05, size=2000)
        hist = Histogram(DEFAULT_BUCKETS)
        for s in samples:
            hist.observe(s)
        # numpy reference: cumulative count of samples <= each bound
        # (Prometheus `le` buckets are inclusive upper bounds)
        expected = [int(np.sum(samples <= edge)) for edge in DEFAULT_BUCKETS]
        expected.append(len(samples))
        assert hist.cumulative() == expected
        assert hist.count == len(samples)
        assert hist.sum == pytest.approx(samples.sum())
        assert hist.mean == pytest.approx(samples.mean())

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.95, 0.99])
    def test_quantile_close_to_numpy_within_bucket_width(self, q):
        rng = np.random.default_rng(1)
        samples = rng.uniform(0.0, 1.0, size=5000)
        hist = Histogram(np.linspace(0.05, 1.0, 20))
        for s in samples:
            hist.observe(s)
        estimate = hist.quantile(q)
        exact = float(np.quantile(samples, q))
        # linear interpolation inside a bucket is exact up to one bucket
        # width for a uniform distribution
        assert abs(estimate - exact) < 0.05 + 1e-9

    def test_quantile_edge_cases(self):
        hist = Histogram((1.0, 2.0))
        assert math.isnan(hist.quantile(0.5))
        hist.observe(10.0)  # lands in +Inf bucket
        assert hist.quantile(0.99) == 2.0  # clamped to highest finite edge
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, math.inf))


class TestRegistry:
    def test_registration_is_idempotent_and_type_checked(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "help text")
        assert registry.counter("hits_total") is counter
        with pytest.raises(ValueError):
            registry.gauge("hits_total")
        with pytest.raises(ValueError):
            registry.counter("hits_total", labels=("route",))

    def test_counter_monotonicity(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_children_and_total(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labels=("route", "code"))
        family.labels(route="/a", code=200).inc(3)
        family.labels(route="/b", code=500).inc()
        assert family.labels(route="/a", code=200).value == 3
        assert family.total() == 4
        with pytest.raises(ValueError):
            family.labels(route="/a")  # missing label
        with pytest.raises(ValueError):
            family.inc()  # labeled family has no sole child

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("spins_total")
        hist = registry.histogram("spin_size", buckets=(0.5, 1.5, 2.5))
        n_threads, n_iter = 8, 2000

        def spin():
            for i in range(n_iter):
                counter.inc()
                hist.observe(i % 3)

        threads = [threading.Thread(target=spin) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_iter
        assert hist.count == n_threads * n_iter
        assert hist.cumulative()[-1] == n_threads * n_iter


class TestPrometheusRender:
    def test_exposition_format_parses(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs run").inc(7)
        registry.gauge("queue_depth").set(3)
        family = registry.counter("http_requests_total", labels=("route",))
        family.labels(route='/pre"dict').inc()
        hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)

        text = render_prometheus(registry)
        assert text.endswith("\n")
        samples, types = {}, {}
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split(" ")
                types[name] = kind
            elif line and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
        assert types == {"jobs_total": "counter", "queue_depth": "gauge",
                         "http_requests_total": "counter",
                         "latency_seconds": "histogram"}
        assert samples["jobs_total"] == 7
        assert samples["queue_depth"] == 3
        assert samples['http_requests_total{route="/pre\\"dict"}'] == 1
        assert samples['latency_seconds_bucket{le="0.1"}'] == 1
        assert samples['latency_seconds_bucket{le="1"}'] == 2
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 3
        assert samples["latency_seconds_count"] == 3
        assert samples["latency_seconds_sum"] == pytest.approx(5.55)

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.histogram("b_seconds", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["a_total"]["series"][0]["value"] == 1
        assert parsed["b_seconds"]["series"][0]["count"] == 1
