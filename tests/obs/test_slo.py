"""SLO tracker: windowed attainment, burn rates, expiry, gauge exposition."""

import pytest

from repro.obs import MetricsRegistry, SLOTracker, render_prometheus


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def tracker():
    registry = MetricsRegistry()
    clock = FakeClock()
    slo = SLOTracker(registry, scope="serve",
                     objectives={"/predict": 0.100},
                     latency_target=0.99, availability_target=0.999,
                     window=300.0, slots=30, clock=clock)
    return slo, registry, clock


class TestObjectives:
    def test_route_and_default_objectives(self, tracker):
        slo, _, _ = tracker
        assert slo.objective("/predict") == 0.100
        assert slo.objective("/unknown") == slo.default_objective

    def test_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            SLOTracker(registry, latency_target=1.0)
        with pytest.raises(ValueError):
            SLOTracker(registry, availability_target=0.0)
        with pytest.raises(ValueError):
            SLOTracker(registry, slots=1)


class TestAttainmentAndBurn:
    def test_all_fast_requests_attain(self, tracker):
        slo, _, _ = tracker
        for _ in range(10):
            slo.observe("/predict", 0.010, 200)
        stats = slo.stats()["routes"]["/predict"]
        assert stats["requests"] == 10
        assert stats["latency_attainment"] == 1.0
        assert stats["latency_burn_rate"] == 0.0
        assert stats["availability"] == 1.0
        assert stats["error_burn_rate"] == 0.0

    def test_slow_requests_burn_latency_budget(self, tracker):
        slo, _, _ = tracker
        for _ in range(9):
            slo.observe("/predict", 0.010, 200)
        slo.observe("/predict", 0.500, 200)  # 1 of 10 over the objective
        stats = slo.stats()["routes"]["/predict"]
        assert stats["latency_attainment"] == 0.9
        # bad_fraction / (1 - target) = 0.1 / 0.01
        assert stats["latency_burn_rate"] == pytest.approx(10.0)
        assert stats["availability"] == 1.0  # 200s: latency only

    def test_5xx_burn_error_budget_4xx_do_not(self, tracker):
        slo, _, _ = tracker
        for _ in range(8):
            slo.observe("/predict", 0.010, 200)
        slo.observe("/predict", 0.010, 429)  # shedding: not an error
        slo.observe("/predict", 0.010, 504)  # deadline miss: is one
        stats = slo.stats()["routes"]["/predict"]
        assert stats["availability"] == pytest.approx(0.9)
        assert stats["error_burn_rate"] == pytest.approx(0.1 / 0.001)

    def test_exactly_on_objective_is_fast(self, tracker):
        slo, _, _ = tracker
        slo.observe("/predict", 0.100, 200)  # boundary: > not >=
        assert slo.stats()["routes"]["/predict"]["latency_attainment"] == 1.0


class TestWindow:
    def test_old_observations_expire(self, tracker):
        slo, _, clock = tracker
        slo.observe("/predict", 0.500, 500)  # slow AND failed
        assert slo.stats()["routes"]["/predict"]["requests"] == 1
        clock.advance(301.0)  # past the whole window
        slo.observe("/predict", 0.010, 200)
        stats = slo.stats()["routes"]["/predict"]
        assert stats["requests"] == 1  # old bucket lazily reset
        assert stats["latency_attainment"] == 1.0
        assert stats["availability"] == 1.0

    def test_partial_window_keeps_recent(self, tracker):
        slo, _, clock = tracker
        slo.observe("/predict", 0.500, 200)
        clock.advance(100.0)  # still inside the 300 s window
        slo.observe("/predict", 0.010, 200)
        stats = slo.stats()["routes"]["/predict"]
        assert stats["requests"] == 2
        assert stats["latency_attainment"] == 0.5


class TestExposition:
    def test_gauges_land_on_metrics_with_scope_label(self, tracker):
        slo, registry, _ = tracker
        slo.observe("/predict", 0.010, 200)
        text = render_prometheus(registry)
        assert 'slo_latency_attainment{route="/predict",scope="serve"} 1' in text
        assert "slo_error_burn_rate" in text
        assert 'slo_window_requests{route="/predict",scope="serve"} 1' in text

    def test_stats_shape(self, tracker):
        slo, _, _ = tracker
        slo.observe("/predict", 0.010, 200)
        stats = slo.stats()
        assert stats["scope"] == "serve"
        assert stats["window_seconds"] == 300.0
        assert stats["latency_target"] == 0.99
        assert set(stats["routes"]["/predict"]) == {
            "objective_ms", "requests", "latency_attainment",
            "latency_burn_rate", "availability", "error_burn_rate"}
