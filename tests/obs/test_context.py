"""W3C traceparent parsing/formatting and cross-boundary context adoption."""

import pytest

from repro.obs import (
    SpanContext,
    activate,
    current_context,
    current_traceparent,
    detach_context,
    disable_tracing,
    format_traceparent,
    get_tracer,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    trace,
    tracing,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    get_tracer().reset()
    yield
    disable_tracing()


class TestIds:
    def test_id_shapes(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)  # hex
        int(new_span_id(), 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64
        assert len({new_span_id() for _ in range(64)}) == 64


class TestTraceparent:
    def test_round_trip(self):
        ctx = SpanContext("ab" * 16, "cd" * 8)
        header = format_traceparent(ctx)
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        parsed = parse_traceparent(header)
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    @pytest.mark.parametrize("bad", [
        None,
        "",
        "garbage",
        "00-short-cd" * 2,
        "00-" + "g" * 32 + "-" + "cd" * 8 + "-01",   # non-hex
        "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",   # all-zero trace id
        "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span id
    ])
    def test_malformed_headers_parse_to_none(self, bad):
        assert parse_traceparent(bad) is None

    def test_uppercase_header_is_normalized(self):
        parsed = parse_traceparent(f"00-{'AB' * 16}-{'CD' * 8}-01")
        assert parsed.trace_id == "ab" * 16
        assert parsed.span_id == "cd" * 8

    def test_current_traceparent_reflects_open_span(self):
        assert current_traceparent() is None
        with tracing():
            with trace("req") as span:
                header = current_traceparent()
                assert header == f"00-{span.trace_id}-{span.span_id}-01"
        assert current_traceparent() is None


class TestSpanContext:
    def test_immutable(self):
        ctx = SpanContext(new_trace_id(), new_span_id())
        with pytest.raises(AttributeError):
            ctx.trace_id = "other"

    def test_remote_parent_semantics(self):
        ctx = SpanContext(new_trace_id(), new_span_id())
        assert ctx.depth == -1   # children land at depth 0
        assert ctx.name is None
        ctx.set_attr("ignored", 1)  # no-op, must not raise


class TestActivate:
    def test_activate_none_is_noop(self):
        with activate(None):
            assert current_context() is None

    def test_activated_context_parents_new_spans(self):
        remote = SpanContext(new_trace_id(), new_span_id())
        with tracing() as tracer:
            with activate(remote):
                assert current_context() is remote
                with trace("local.child"):
                    pass
            assert current_context() is None
        [span] = tracer.spans
        assert span["trace_id"] == remote.trace_id
        assert span["parent_id"] == remote.span_id
        assert span["depth"] == 0

    def test_detach_context_swaps_live_span_for_remote(self):
        with tracing():
            with trace("live") as span:
                detach_context()
                ctx = current_context()
                assert isinstance(ctx, SpanContext)
                assert ctx.trace_id == span.trace_id
                assert ctx.span_id == span.span_id
                # idempotent: already detached stays put
                detach_context()
                assert current_context() is ctx
