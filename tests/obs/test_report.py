"""``python -m repro.obs report`` over heterogeneous JSONL files."""

import json
import subprocess
import sys

import pytest

from repro.obs import load_events, render_report
from repro.obs.report import (
    main,
    render_metrics_table,
    render_op_table,
    render_span_table,
)


@pytest.fixture()
def mixed_file(tmp_path):
    path = tmp_path / "run.jsonl"
    lines = [
        {"type": "span", "name": "train.epoch", "ts": 1.0, "dur": 0.5,
         "depth": 0, "parent": None, "thread": 1},
        {"type": "span", "name": "train.epoch", "ts": 2.0, "dur": 0.7,
         "depth": 0, "parent": None, "thread": 1},
        {"type": "span", "name": "train.forward", "ts": 1.0, "dur": 0.2,
         "depth": 1, "parent": "train.epoch", "thread": 1},
        {"type": "op", "name": "matmul", "forward_calls": 10,
         "forward_seconds": 0.3, "backward_calls": 10,
         "backward_seconds": 0.2, "alloc_count": 10, "alloc_bytes": 4096},
        {"type": "layer", "name": "Linear", "calls": 4, "total_seconds": 0.4,
         "self_seconds": 0.3, "backward_seconds": 0.1},
        {"type": "metrics", "metrics": {
            "train_loss": {"type": "gauge", "help": "",
                           "series": [{"labels": {}, "value": 0.25}]},
            "train_epoch_seconds": {"type": "histogram", "help": "", "series": [
                {"labels": {}, "count": 2, "sum": 1.2, "buckets": {},
                 "p50": 0.5, "p95": 0.7, "p99": 0.7}]},
        }},
        {"event": "fit_start", "run": "r0", "model": "DistMult",
         "objective": "1toN", "epochs": 2},
        {"event": "epoch", "epoch": 1, "loss": 0.9, "seconds": 0.5},
        {"event": "epoch", "epoch": 2, "loss": 0.25, "seconds": 0.7},
        {"event": "fit_end", "run": "r0", "epochs_run": 2, "final_loss": 0.25},
        {"unrelated": True},
    ]
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(json.dumps(line) + "\n")
        fh.write("not json\n")  # bad lines are skipped, not fatal
    return str(path)


def test_load_events_skips_bad_lines(mixed_file):
    events = load_events([mixed_file])
    assert len(events) == 11


def test_span_table_aggregates_by_name(mixed_file):
    table = render_span_table(load_events([mixed_file]))
    lines = table.splitlines()
    epoch_row = next(line for line in lines if line.startswith("train.epoch"))
    cells = epoch_row.split()
    assert cells[1] == "2"            # count
    assert cells[2] == "1.2000"       # total seconds
    # sorted by total desc: epoch (1.2s) before forward (0.2s)
    assert lines.index(epoch_row) < lines.index(
        next(line for line in lines if line.startswith("train.forward")))


def test_op_and_metrics_tables(mixed_file):
    events = load_events([mixed_file])
    ops = render_op_table(events)
    assert "matmul" in ops and "Linear" in ops
    metrics = render_metrics_table(events)
    assert "train_loss" in metrics
    assert "train_epoch_seconds" in metrics


def test_full_report_includes_telemetry(mixed_file):
    report = render_report([mixed_file])
    assert "spans" in report
    assert "training telemetry" in report
    assert "first 0.9000 -> last 0.2500" in report
    assert "unrecognized" in report  # the {"unrelated": true} line


def test_cli_main(mixed_file, capsys):
    assert main(["report", mixed_file, "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "train.epoch" in out
    assert "matmul" in out


def test_module_entry_point(mixed_file):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", "report", mixed_file],
        capture_output=True, text=True)
    assert proc.returncode == 0
    assert "train.epoch" in proc.stdout
