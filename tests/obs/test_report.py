"""``python -m repro.obs report`` over heterogeneous JSONL files."""

import json
import subprocess
import sys

import pytest

from repro.obs import build_trace_trees, load_events, render_report
from repro.obs.report import (
    main,
    render_metrics_table,
    render_op_table,
    render_slowest_traces,
    render_span_table,
)


@pytest.fixture()
def mixed_file(tmp_path):
    path = tmp_path / "run.jsonl"
    lines = [
        {"type": "span", "name": "train.epoch", "ts": 1.0, "dur": 0.5,
         "depth": 0, "parent": None, "thread": 1},
        {"type": "span", "name": "train.epoch", "ts": 2.0, "dur": 0.7,
         "depth": 0, "parent": None, "thread": 1},
        {"type": "span", "name": "train.forward", "ts": 1.0, "dur": 0.2,
         "depth": 1, "parent": "train.epoch", "thread": 1},
        {"type": "op", "name": "matmul", "forward_calls": 10,
         "forward_seconds": 0.3, "backward_calls": 10,
         "backward_seconds": 0.2, "alloc_count": 10, "alloc_bytes": 4096},
        {"type": "layer", "name": "Linear", "calls": 4, "total_seconds": 0.4,
         "self_seconds": 0.3, "backward_seconds": 0.1},
        {"type": "metrics", "metrics": {
            "train_loss": {"type": "gauge", "help": "",
                           "series": [{"labels": {}, "value": 0.25}]},
            "train_epoch_seconds": {"type": "histogram", "help": "", "series": [
                {"labels": {}, "count": 2, "sum": 1.2, "buckets": {},
                 "p50": 0.5, "p95": 0.7, "p99": 0.7}]},
        }},
        {"event": "fit_start", "run": "r0", "model": "DistMult",
         "objective": "1toN", "epochs": 2},
        {"event": "epoch", "epoch": 1, "loss": 0.9, "seconds": 0.5},
        {"event": "epoch", "epoch": 2, "loss": 0.25, "seconds": 0.7},
        {"event": "fit_end", "run": "r0", "epochs_run": 2, "final_loss": 0.25},
        {"unrelated": True},
    ]
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(json.dumps(line) + "\n")
        fh.write("not json\n")  # bad lines are skipped, not fatal
    return str(path)


def test_load_events_skips_bad_lines(mixed_file):
    events = load_events([mixed_file])
    assert len(events) == 11


def test_span_table_aggregates_by_name(mixed_file):
    table = render_span_table(load_events([mixed_file]))
    lines = table.splitlines()
    epoch_row = next(line for line in lines if line.startswith("train.epoch"))
    cells = epoch_row.split()
    assert cells[1] == "2"            # count
    assert cells[2] == "1.2000"       # total seconds
    # sorted by total desc: epoch (1.2s) before forward (0.2s)
    assert lines.index(epoch_row) < lines.index(
        next(line for line in lines if line.startswith("train.forward")))


def test_op_and_metrics_tables(mixed_file):
    events = load_events([mixed_file])
    ops = render_op_table(events)
    assert "matmul" in ops and "Linear" in ops
    metrics = render_metrics_table(events)
    assert "train_loss" in metrics
    assert "train_epoch_seconds" in metrics


def test_full_report_includes_telemetry(mixed_file):
    report = render_report([mixed_file])
    assert "spans" in report
    assert "training telemetry" in report
    assert "first 0.9000 -> last 0.2500" in report
    assert "unrecognized" in report  # the {"unrelated": true} line


def test_cli_main(mixed_file, capsys):
    assert main(["report", mixed_file, "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "train.epoch" in out
    assert "matmul" in out


def test_module_entry_point(mixed_file):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", "report", mixed_file],
        capture_output=True, text=True)
    assert proc.returncode == 0
    assert "train.epoch" in proc.stdout


# ---------------------------------------------------------------------------
# Distributed trace stitching
# ---------------------------------------------------------------------------

def _span(name, ts, dur, trace_id, span_id, parent_id=None, pid=1, **attrs):
    return {"type": "span", "name": name, "ts": ts, "dur": dur,
            "trace_id": trace_id, "span_id": span_id, "parent_id": parent_id,
            "depth": 0, "parent": None, "thread": 1, "pid": pid, **attrs}


@pytest.fixture()
def stitched_files(tmp_path):
    """A front-end file and a worker file holding one shared trace plus a
    second single-span trace."""
    t1, t2 = "ab" * 16, "cd" * 16
    frontend = tmp_path / "trace.jsonl"
    worker = tmp_path / "trace.jsonl.w0"
    with open(frontend, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(_span("pool.request", 10.0, 0.050, t1,
                                  "f" * 16, pid=100)) + "\n")
        fh.write(json.dumps(_span("other.request", 20.0, 0.005, t2,
                                  "e" * 16, pid=100)) + "\n")
    with open(worker, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(_span("serve.request", 10.01, 0.030, t1,
                                  "a" * 16, parent_id="f" * 16, pid=200)) + "\n")
        fh.write(json.dumps(_span("serve.predict", 10.02, 0.010, t1,
                                  "b" * 16, parent_id="a" * 16, pid=200,
                                  cache_hits=1)) + "\n")
    return str(frontend), str(worker), t1, t2


class TestTraceTrees:
    def test_cross_file_stitching(self, stitched_files):
        frontend, worker, t1, t2 = stitched_files
        trees = build_trace_trees(load_events([frontend, worker]))
        assert [t["trace_id"] for t in trees] == [t1, t2]  # slowest first
        tree = trees[0]
        assert tree["span_count"] == 3
        assert tree["pids"] == [100, 200]
        [root] = tree["roots"]
        assert root["record"]["name"] == "pool.request"
        [child] = root["children"]
        assert child["record"]["name"] == "serve.request"
        [grandchild] = child["children"]
        assert grandchild["record"]["name"] == "serve.predict"

    def test_self_time_subtracts_children(self, stitched_files):
        frontend, worker, t1, _ = stitched_files
        trees = build_trace_trees(load_events([frontend, worker]))
        [root] = trees[0]["roots"]
        assert root["self"] == pytest.approx(0.050 - 0.030)
        [child] = root["children"]
        assert child["self"] == pytest.approx(0.030 - 0.010)

    def test_missing_parent_becomes_extra_root(self, tmp_path):
        path = tmp_path / "orphan.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(_span("orphan", 1.0, 0.01, "11" * 16,
                                      "22" * 8, parent_id="33" * 8)) + "\n")
        [tree] = build_trace_trees(load_events([str(path)]))
        assert len(tree["roots"]) == 1  # not lost

    def test_slowest_traces_render(self, stitched_files):
        frontend, worker, t1, _ = stitched_files
        text = render_slowest_traces(load_events([frontend, worker]))
        assert f"trace {t1}" in text
        assert "pool.request" in text
        assert "serve.predict cache_hits=1" in text


class TestTraceCli:
    def test_trace_drill_down_by_prefix(self, stitched_files, capsys):
        frontend, worker, t1, _ = stitched_files
        assert main(["report", "--trace", t1[:8], frontend, worker]) == 0
        out = capsys.readouterr().out
        assert f"trace {t1}" in out
        assert "serve.request" in out
        assert "other.request" not in out

    def test_trace_not_found(self, stitched_files, capsys):
        frontend, worker, _, _ = stitched_files
        assert main(["report", "--trace", "ff" * 16, frontend, worker]) == 1
        assert "not found" in capsys.readouterr().out

    def test_json_format(self, stitched_files, capsys):
        frontend, worker, t1, t2 = stitched_files
        assert main(["report", "--format", "json", frontend, worker]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_count"] == 2
        ids = [t["trace_id"] for t in payload["traces"]]
        assert ids == [t1, t2]
        deep = payload["traces"][0]["roots"][0]["children"][0]["children"][0]
        assert deep["name"] == "serve.predict"
        assert deep["attrs"] == {"cache_hits": 1}
        stats = payload["span_stats"]["serve.request"]
        assert stats["count"] == 1
        assert stats["self_total_s"] == pytest.approx(0.020)

    def test_json_format_single_trace(self, stitched_files, capsys):
        frontend, worker, t1, _ = stitched_files
        assert main(["report", "--format", "json", "--trace", t1[:6],
                     frontend, worker]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [t["trace_id"] for t in payload["traces"]] == [t1]
