"""Span tracing: nesting, ids, JSONL buffering, concurrency, fork, no-op path."""

import asyncio
import multiprocessing as mp
import os
import re
import threading
import time

import pytest

from repro.obs import (
    current_context,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    read_trace,
    trace,
    traced,
    tracing,
)
from repro.obs.context import SpanContext
from repro.obs.trace import _NOOP

_HEX32 = re.compile(r"^[0-9a-f]{32}$")
_HEX16 = re.compile(r"^[0-9a-f]{16}$")


@pytest.fixture(autouse=True)
def _tracing_off():
    get_tracer().reset()
    yield
    disable_tracing()


class TestNesting:
    def test_nested_spans_record_parent_and_depth(self):
        with tracing() as tracer:
            with trace("outer"):
                with trace("inner", step=3):
                    pass
        spans = {s["name"]: s for s in tracer.spans}
        assert spans["outer"]["depth"] == 0
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["depth"] == 1
        assert spans["inner"]["parent"] == "outer"
        assert spans["inner"]["step"] == 3

    def test_durations_nest(self):
        with tracing() as tracer:
            with trace("outer"):
                with trace("inner"):
                    time.sleep(0.02)
        spans = {s["name"]: s for s in tracer.spans}
        assert spans["inner"]["dur"] >= 0.02
        assert spans["outer"]["dur"] >= spans["inner"]["dur"]
        # children are recorded before their parents (completion order)
        names = [s["name"] for s in tracer.spans]
        assert names.index("inner") < names.index("outer")

    def test_span_survives_exception(self):
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                with trace("doomed"):
                    raise RuntimeError("boom")
        assert [s["name"] for s in tracer.spans] == ["doomed"]


class TestDisabledFastPath:
    def test_disabled_trace_returns_shared_noop(self):
        assert not get_tracer().enabled
        assert trace("anything") is _NOOP
        assert trace("other", k=1) is _NOOP
        with trace("free"):
            pass  # no allocation, no recording
        assert len(get_tracer().spans) == 0

    def test_traced_decorator_checks_enabled_per_call(self):
        @traced("work.unit")
        def work(x):
            return x * 2

        assert work(3) == 6  # disabled: plain call
        with tracing() as tracer:
            assert work(4) == 8
        assert [s["name"] for s in tracer.spans] == ["work.unit"]
        assert work(5) == 10
        assert len(tracer.spans) == 1  # no recording after disable

    def test_traced_default_name(self):
        @traced()
        def quantify():
            return 1

        with tracing() as tracer:
            quantify()
        assert tracer.spans[0]["name"].endswith("quantify")


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        enable_tracing(path, flush_every=1)
        with trace("epoch", epoch=1):
            with trace("batch", size=32):
                pass
        # flush_every=1 restores line-per-span: readable before disable
        events = read_trace(path)
        assert [e["name"] for e in events] == ["batch", "epoch"]
        assert all(e["type"] == "span" for e in events)
        assert events[0]["size"] == 32
        assert events[0]["parent"] == "epoch"
        assert events[0]["dur"] >= 0.0
        assert events[0]["thread"]
        disable_tracing()
        assert not get_tracer().enabled

    def test_numpy_attrs_are_coerced(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "trace.jsonl")
        enable_tracing(path, flush_every=1)
        with trace("np", count=np.int64(5), value=np.float32(0.5)):
            pass
        events = read_trace(path)
        assert events[0]["count"] == 5
        assert events[0]["value"] == 0.5

    def test_bounded_span_buffer(self):
        from repro.obs import Tracer

        tracer = Tracer(keep=4)
        for i in range(10):
            with tracer.span("s", i=i):
                pass
        assert len(tracer.spans) == 4
        assert [s["i"] for s in tracer.spans] == [6, 7, 8, 9]


class TestIds:
    def test_root_span_mints_trace_and_span_ids(self):
        with tracing() as tracer:
            with trace("root"):
                pass
        [span] = tracer.spans
        assert _HEX32.match(span["trace_id"])
        assert _HEX16.match(span["span_id"])
        assert span["parent_id"] is None

    def test_children_share_trace_id_and_chain_parent_ids(self):
        with tracing() as tracer:
            with trace("a"):
                with trace("b"):
                    with trace("c"):
                        pass
        spans = {s["name"]: s for s in tracer.spans}
        assert spans["a"]["trace_id"] == spans["b"]["trace_id"] \
            == spans["c"]["trace_id"]
        assert spans["b"]["parent_id"] == spans["a"]["span_id"]
        assert spans["c"]["parent_id"] == spans["b"]["span_id"]
        assert len({spans[n]["span_id"] for n in "abc"}) == 3

    def test_recursion_gets_distinct_span_ids(self):
        def descend(n):
            with trace("recurse", level=n):
                if n:
                    descend(n - 1)

        with tracing() as tracer:
            descend(3)
        spans = sorted(tracer.spans, key=lambda s: s["depth"])
        assert [s["depth"] for s in spans] == [0, 1, 2, 3]
        for child, parent in zip(spans[1:], spans):
            assert child["parent_id"] == parent["span_id"]
        assert len({s["span_id"] for s in spans}) == 4

    def test_sibling_roots_get_distinct_trace_ids(self):
        with tracing() as tracer:
            with trace("first"):
                pass
            with trace("second"):
                pass
        first, second = tracer.spans
        assert first["trace_id"] != second["trace_id"]


class TestConcurrency:
    def test_two_threads_build_disjoint_trees(self):
        """Spans opened on different threads never parent across threads."""
        barrier = threading.Barrier(2)

        def worker(tag):
            barrier.wait()
            with trace("thread.root", tag=tag):
                with trace("thread.child", tag=tag):
                    time.sleep(0.01)

        with tracing() as tracer:
            threads = [threading.Thread(target=worker, args=(t,))
                       for t in ("x", "y")]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        spans = list(tracer.spans)
        assert len(spans) == 4
        by_tag = {}
        for s in spans:
            by_tag.setdefault(s["tag"], {})[s["name"]] = s
        assert by_tag["x"]["thread.root"]["trace_id"] \
            != by_tag["y"]["thread.root"]["trace_id"]
        for tag in ("x", "y"):
            root, child = by_tag[tag]["thread.root"], by_tag[tag]["thread.child"]
            assert root["parent_id"] is None
            assert child["trace_id"] == root["trace_id"]
            assert child["parent_id"] == root["span_id"]

    def test_interleaved_asyncio_tasks_nest_correctly(self):
        """Tasks copy the context: each task's spans parent to its own
        request span even when the event loop interleaves them."""

        async def request(tag):
            with trace("task.request", tag=tag) as root:
                await asyncio.sleep(0.005)
                with trace("task.step", tag=tag):
                    await asyncio.sleep(0.005)
                return root.trace_id

        async def main():
            return await asyncio.gather(request("a"), request("b"))

        with tracing() as tracer:
            trace_ids = asyncio.run(main())
        assert trace_ids[0] != trace_ids[1]
        by_tag = {}
        for s in tracer.spans:
            by_tag.setdefault(s["tag"], {})[s["name"]] = s
        for tag, tid in zip(("a", "b"), trace_ids):
            root, step = by_tag[tag]["task.request"], by_tag[tag]["task.step"]
            assert root["trace_id"] == tid
            assert step["trace_id"] == tid
            assert step["parent_id"] == root["span_id"]


def _fork_probe(queue):
    """Forked child: report tracer state and open one span."""
    tracer = get_tracer()
    ctx = current_context()
    with tracer.span("child.work") as span:
        pass
    queue.put({
        "enabled": tracer.enabled,
        "path": tracer.path,
        "ring_before": len(tracer.spans) - 1,  # child.work just landed
        "ctx_is_detached": isinstance(ctx, SpanContext),
        "ctx_trace_id": ctx.trace_id if ctx is not None else None,
        "ctx_span_id": ctx.span_id if ctx is not None else None,
        "span_trace_id": span.trace_id,
        "span_parent_id": span._parent_id,
        "span_depth": span.depth,
    })


class TestForkInheritance:
    def test_forked_child_keeps_trace_id_with_fresh_stack(self, tmp_path):
        if not hasattr(os, "register_at_fork"):
            pytest.skip("fork hooks unavailable")
        mp_ctx = mp.get_context("fork")
        path = str(tmp_path / "parent.jsonl")
        queue = mp_ctx.Queue()
        with tracing(path=path):
            with trace("parent.request") as parent:
                proc = mp_ctx.Process(target=_fork_probe, args=(queue,))
                proc.start()
                report = queue.get(timeout=10)
                proc.join(timeout=10)
                parent_ids = (parent.trace_id, parent.span_id)
        # at-fork hook: tracing off, no export file, empty ring
        assert report["enabled"] is False
        assert report["path"] is None
        assert report["ring_before"] == 0
        # the live parent span was swapped for a detached SpanContext …
        assert report["ctx_is_detached"] is True
        assert report["ctx_trace_id"] == parent_ids[0]
        assert report["ctx_span_id"] == parent_ids[1]
        # … so a new child span continues the trace at a fresh depth
        assert report["span_trace_id"] == parent_ids[0]
        assert report["span_parent_id"] == parent_ids[1]
        assert report["span_depth"] == 0


class TestBuffering:
    def test_spans_buffer_until_flush_every(self, tmp_path):
        path = str(tmp_path / "buffered.jsonl")
        enable_tracing(path, flush_every=4)
        for i in range(3):
            with trace("buffered", i=i):
                pass
        assert read_trace(path) == []  # still in the in-process buffer
        with trace("buffered", i=3):
            pass
        assert len(read_trace(path)) == 4  # hit flush_every -> one write
        disable_tracing()

    def test_flush_forces_partial_buffer_out(self, tmp_path):
        path = str(tmp_path / "flush.jsonl")
        tracer = enable_tracing(path, flush_every=100)
        with trace("pending"):
            pass
        assert read_trace(path) == []
        tracer.flush()
        assert [e["name"] for e in read_trace(path)] == ["pending"]
        disable_tracing()

    def test_disable_flushes_remaining_buffer(self, tmp_path):
        path = str(tmp_path / "ondisable.jsonl")
        enable_tracing(path, flush_every=100)
        with trace("tail"):
            pass
        disable_tracing()
        assert [e["name"] for e in read_trace(path)] == ["tail"]

    def test_flush_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            enable_tracing(str(tmp_path / "x.jsonl"), flush_every=0)
        disable_tracing()


class TestCurrentSpan:
    def test_current_span_inside_block_is_live(self):
        with tracing() as tracer:
            with trace("req"):
                current_span().set_attr("cache_hits", 7)
        assert tracer.spans[0]["cache_hits"] == 7

    def test_current_span_outside_block_is_noop(self):
        assert current_span() is _NOOP
        current_span().set_attr("ignored", 1)  # must not raise
