"""Span tracing: nesting, timing, JSONL round-trip, no-op fast path."""

import time

import pytest

from repro.obs import (
    disable_tracing,
    enable_tracing,
    get_tracer,
    read_trace,
    trace,
    traced,
    tracing,
)
from repro.obs.trace import _NOOP


@pytest.fixture(autouse=True)
def _tracing_off():
    get_tracer().reset()
    yield
    disable_tracing()


class TestNesting:
    def test_nested_spans_record_parent_and_depth(self):
        with tracing() as tracer:
            with trace("outer"):
                with trace("inner", step=3):
                    pass
        spans = {s["name"]: s for s in tracer.spans}
        assert spans["outer"]["depth"] == 0
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["depth"] == 1
        assert spans["inner"]["parent"] == "outer"
        assert spans["inner"]["step"] == 3

    def test_durations_nest(self):
        with tracing() as tracer:
            with trace("outer"):
                with trace("inner"):
                    time.sleep(0.02)
        spans = {s["name"]: s for s in tracer.spans}
        assert spans["inner"]["dur"] >= 0.02
        assert spans["outer"]["dur"] >= spans["inner"]["dur"]
        # children are recorded before their parents (completion order)
        names = [s["name"] for s in tracer.spans]
        assert names.index("inner") < names.index("outer")

    def test_span_survives_exception(self):
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                with trace("doomed"):
                    raise RuntimeError("boom")
        assert [s["name"] for s in tracer.spans] == ["doomed"]


class TestDisabledFastPath:
    def test_disabled_trace_returns_shared_noop(self):
        assert not get_tracer().enabled
        assert trace("anything") is _NOOP
        assert trace("other", k=1) is _NOOP
        with trace("free"):
            pass  # no allocation, no recording
        assert len(get_tracer().spans) == 0

    def test_traced_decorator_checks_enabled_per_call(self):
        @traced("work.unit")
        def work(x):
            return x * 2

        assert work(3) == 6  # disabled: plain call
        with tracing() as tracer:
            assert work(4) == 8
        assert [s["name"] for s in tracer.spans] == ["work.unit"]
        assert work(5) == 10
        assert len(tracer.spans) == 1  # no recording after disable

    def test_traced_default_name(self):
        @traced()
        def quantify():
            return 1

        with tracing() as tracer:
            quantify()
        assert tracer.spans[0]["name"].endswith("quantify")


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        enable_tracing(path)
        with trace("epoch", epoch=1):
            with trace("batch", size=32):
                pass
        # line-flushed: readable before disable_tracing closes the handle
        events = read_trace(path)
        assert [e["name"] for e in events] == ["batch", "epoch"]
        assert all(e["type"] == "span" for e in events)
        assert events[0]["size"] == 32
        assert events[0]["parent"] == "epoch"
        assert events[0]["dur"] >= 0.0
        assert events[0]["thread"]
        disable_tracing()
        assert not get_tracer().enabled

    def test_numpy_attrs_are_coerced(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "trace.jsonl")
        enable_tracing(path)
        with trace("np", count=np.int64(5), value=np.float32(0.5)):
            pass
        events = read_trace(path)
        assert events[0]["count"] == 5
        assert events[0]["value"] == 0.5

    def test_bounded_span_buffer(self):
        from repro.obs import Tracer

        tracer = Tracer(keep=4)
        for i in range(10):
            with tracer.span("s", i=i):
                pass
        assert len(tracer.spans) == 4
        assert [s["i"] for s in tracer.spans] == [6, 7, 8, 9]
