"""Autograd profiler: hook installation/teardown, attribution, no-op off path."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.obs import AutogradProfiler


def _saved_functional():
    """Identity snapshot of every public functional op."""
    return {name: getattr(F, name) for name in F.__all__ if callable(getattr(F, name))}


class TestHookLifecycle:
    def test_off_path_is_the_original_functions(self):
        # the "disabled overhead is zero" guarantee: outside a profiling
        # block the module attributes ARE the originals, not wrappers
        before = _saved_functional()
        call_before = nn.Module.__call__
        with AutogradProfiler():
            assert getattr(F, "matmul") is not before["matmul"]
            assert nn.Module.__call__ is not call_before
        after = _saved_functional()
        assert all(after[name] is before[name] for name in before)
        assert nn.Module.__call__ is call_before

    def test_restore_on_error_inside_block(self):
        before = _saved_functional()
        with pytest.raises(RuntimeError):
            with AutogradProfiler():
                raise RuntimeError("boom")
        assert _saved_functional() == before

    def test_nested_activation_raises(self):
        with AutogradProfiler():
            with pytest.raises(RuntimeError):
                with AutogradProfiler():
                    pass
        # outer exit must still restore cleanly
        with AutogradProfiler():
            pass


class TestAttribution:
    def test_forward_backward_and_alloc_counts(self):
        rng = np.random.default_rng(0)
        a = nn.Tensor(rng.normal(size=(8, 4)), requires_grad=True)
        b = nn.Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        with AutogradProfiler() as prof:
            out = F.matmul(a, b)
            loss = F.sum(out)
            loss.backward()
        mm = prof.op_stats["matmul"]
        assert mm.forward_calls == 1
        assert mm.backward_calls == 1
        assert mm.forward_seconds >= 0.0
        assert mm.alloc_count == 1
        assert mm.alloc_bytes == 8 * 3 * 8  # float64 result
        assert prof.op_stats["sum"].backward_calls == 1
        # gradients flowed normally through the wrappers
        assert a.grad is not None and b.grad is not None

    def test_composite_ops_do_not_double_count_children(self):
        x = nn.Tensor(np.ones((16, 16)), requires_grad=True)
        with AutogradProfiler() as prof:
            F.mean(x)  # composite: calls sum + mul internally
        records = {r["name"]: r for r in prof.to_records() if r["type"] == "op"}
        # self-time accounting: any op mean() delegates to shows up as its
        # own record instead of being folded into mean's time twice
        assert "mean" in records
        assert records["mean"]["forward_calls"] == 1

    def test_module_layers_recorded(self):
        rng = np.random.default_rng(1)

        class TwoLayer(nn.Module):
            def __init__(self):
                super().__init__()
                self.fc1 = nn.Linear(6, 5, rng=rng)
                self.fc2 = nn.Linear(5, 2, rng=rng)

            def forward(self, x):
                return self.fc2(F.relu(self.fc1(x)))

        model = TwoLayer()
        x = nn.Tensor(rng.normal(size=(4, 6)))
        with AutogradProfiler() as prof:
            model(x)
        assert prof.layer_stats["Linear"].calls == 2
        assert prof.layer_stats["TwoLayer"].calls == 1
        # inclusive parent time covers its nested children
        assert (prof.layer_stats["TwoLayer"].total_seconds
                >= prof.layer_stats["TwoLayer"].self_seconds)

    def test_export_and_table(self, tmp_path):
        x = nn.Tensor(np.ones((4, 4)), requires_grad=True)
        with AutogradProfiler() as prof:
            F.sum(F.mul(x, x)).backward()
        path = str(tmp_path / "profile.jsonl")
        prof.export(path)
        from repro.obs import load_events

        records = load_events([path])
        assert any(r["type"] == "op" and r["name"] == "mul" for r in records)
        table = prof.table()
        assert "ops (self time)" in table
        assert "mul" in table
