"""ShardedEvaluator: exact parity with the single-process evaluator."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.dist import ShardedEvaluator
from repro.eval import RankingEvaluator

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="sharded evaluation needs the fork start method")


@pytest.fixture
def single(mkg):
    return RankingEvaluator(mkg.split)


def sharded(mkg, **kwargs):
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("min_queries_per_worker", 1)
    return ShardedEvaluator(mkg.split, **kwargs)


class TestExactParity:
    @needs_fork
    def test_metrics_exactly_equal_full_part(self, mkg, model_factory, single):
        model, _ = model_factory(seed=1)
        expected = single.evaluate(model, part="valid", max_queries=None)
        actual = sharded(mkg).evaluate(model, part="valid", max_queries=None)
        assert expected == actual

    @needs_fork
    def test_ranks_exactly_equal(self, mkg, model_factory, single):
        model, _ = model_factory(seed=1)
        expected = single.compute_ranks(model, mkg.split.test)
        actual = sharded(mkg).compute_ranks(model, mkg.split.test)
        np.testing.assert_array_equal(expected, actual)

    @needs_fork
    def test_subsampled_eval_equal_given_same_rng(self, mkg, model_factory,
                                                  single):
        # Query subsampling draws from the caller's rng *before* sharding,
        # so identical rngs must give identical metrics.
        model, _ = model_factory(seed=1)
        expected = single.evaluate(model, part="valid", max_queries=50,
                                   rng=np.random.default_rng(9))
        actual = sharded(mkg).evaluate(model, part="valid", max_queries=50,
                                       rng=np.random.default_rng(9))
        assert expected == actual


class TestFallbacks:
    def test_single_worker_stays_in_process(self, mkg, model_factory, single):
        model, _ = model_factory(seed=1)
        evaluator = sharded(mkg, num_workers=1)
        expected = single.evaluate(model, part="valid", max_queries=None)
        assert evaluator.evaluate(model, part="valid", max_queries=None) \
            == expected
        assert evaluator.recomputed_chunks == 0

    def test_tiny_query_sets_stay_in_process(self, mkg, model_factory, single):
        # 10 queries under min_queries_per_worker=32 -> no fork overhead.
        model, _ = model_factory(seed=1)
        evaluator = sharded(mkg, min_queries_per_worker=32)
        triples = mkg.split.valid[:5]  # 5 triples -> 10 directed queries
        np.testing.assert_array_equal(
            evaluator.compute_ranks(model, triples),
            single.compute_ranks(model, triples))

    @needs_fork
    def test_dead_worker_chunk_recomputed_in_parent(self, mkg, model_factory,
                                                    single, monkeypatch):
        # Make every forked worker die instantly: the parent must fall
        # back to recomputing all chunks itself, still exactly.
        import repro.dist.evaluator as mod

        def dying_worker(*args, **kwargs):
            import os

            os._exit(3)

        monkeypatch.setattr(mod, "_eval_worker", dying_worker)
        model, _ = model_factory(seed=1)
        evaluator = sharded(mkg, timeout=30.0)
        expected = single.evaluate(model, part="valid", max_queries=None)
        assert evaluator.evaluate(model, part="valid", max_queries=None) \
            == expected
        assert evaluator.recomputed_chunks >= 1
