"""Shared-memory flat buffers and the gradient averager."""

import numpy as np
import pytest

from repro import nn
from repro.dist import GradientAverager, SharedFlatBuffer


class Net(nn.Module):
    def __init__(self, seed=0):
        super().__init__()
        self.fc = nn.Linear(4, 3, rng=np.random.default_rng(seed))
        self.scale = nn.Parameter(np.ones(3))


class TestSharedFlatBuffer:
    def test_rows_are_views_of_one_segment(self):
        with SharedFlatBuffer(3, 5) as buf:
            buf.row(1)[:] = 7.0
            assert buf.array[1].sum() == 35.0
            assert buf.array[0].sum() == 0.0

    def test_close_is_idempotent(self):
        buf = SharedFlatBuffer(1, 4)
        buf.close()
        buf.close()
        assert buf.array is None

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            SharedFlatBuffer(0, 4)
        with pytest.raises(ValueError):
            SharedFlatBuffer(1, 0)


class TestGradientAverager:
    def test_publish_then_read_round_trips_params(self):
        source, target = Net(seed=1), Net(seed=2)
        averager = GradientAverager(source, world_size=2)
        try:
            averager.read_params_into(target)
            for (_, p_src), (_, p_tgt) in zip(source.named_parameters(),
                                              target.named_parameters()):
                np.testing.assert_array_equal(p_src.data, p_tgt.data)
        finally:
            averager.close()

    def test_weighted_average_matches_hand_computation(self):
        model = Net()
        averager = GradientAverager(model, world_size=2)
        try:
            grads = {}
            for rank, weight in ((0, 3.0), (1, 1.0)):
                for _, param in model.named_parameters():
                    param.grad = np.full(param.data.shape, float(rank + 1))
                averager.write_gradients(model, rank, weight)
                grads[rank] = rank + 1.0
            averager.average_into(model, [0, 1])
            # weighted mean: (3*1 + 1*2) / 4 = 1.25 everywhere
            for _, param in model.named_parameters():
                np.testing.assert_allclose(param.grad, 1.25)
        finally:
            averager.close()

    def test_none_grads_contribute_zeros(self):
        model = Net()
        averager = GradientAverager(model, world_size=1)
        try:
            for _, param in model.named_parameters():
                param.grad = None
            averager.write_gradients(model, 0, 2.0)
            averager.average_into(model, [0])
            for _, param in model.named_parameters():
                np.testing.assert_array_equal(param.grad,
                                              np.zeros(param.data.shape))
        finally:
            averager.close()

    def test_zero_total_weight_rejected(self):
        model = Net()
        averager = GradientAverager(model, world_size=1)
        try:
            averager.write_gradients(model, 0, 0.0)
            with pytest.raises(ValueError):
                averager.average_into(model, [0])
        finally:
            averager.close()
