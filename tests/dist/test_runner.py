"""--workers wiring through the experiment runner and CLI."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.experiments import SMOKE, train_model
from repro.experiments.runner import DEFAULT_CONTEXT, set_workers

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="multi-worker training needs the fork start method")


class TestSetWorkers:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            set_workers(0)

    def test_sets_default_context(self):
        try:
            set_workers(3)
            assert DEFAULT_CONTEXT.workers == 3
        finally:
            set_workers(1)

    def test_cli_flag_parses(self):
        from repro.experiments.__main__ import main

        try:
            assert main(["table2", "--scale", "smoke", "--workers", "2"]) == 0
            assert DEFAULT_CONTEXT.workers == 2
        finally:
            set_workers(1)


class TestTrainModelWorkers:
    @needs_fork
    def test_workers_train_and_cache_separately(self):
        single = train_model("DistMult", "drkg-mm", SMOKE, epochs=1)
        multi = train_model("DistMult", "drkg-mm", SMOKE, epochs=1, workers=2)
        assert multi is not single
        assert np.isfinite(multi.report.epoch_losses).all()
        assert multi.test_metrics.num_queries > 0
        # Same arguments hit the workers=2 cache entry.
        assert train_model("DistMult", "drkg-mm", SMOKE, epochs=1,
                           workers=2) is multi
