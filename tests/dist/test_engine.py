"""DistributedEngine: parity, determinism, and fault recovery.

The contract under test (DESIGN.md §10):

* ``world_size=1`` is **bit-for-bit** the seed :class:`TrainingEngine`;
* ``world_size=2`` matches the single-process trajectory within 1e-10
  for 1-to-N training (the gradient average equals the full-batch
  gradient; only float summation order differs);
* multi-worker runs are a pure function of the seed (re-running gives
  bit-identical weights);
* a worker killed mid-epoch never hangs the run — the epoch retries on
  the surviving world and ``on_worker_error`` fires.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.dist import DistributedEngine, WorkerFailure
from repro.dist.engine import _num_batches
from repro.train import (
    Callback,
    NegativeSamplingObjective,
    OneToNObjective,
    TrainingEngine,
)

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="repro.dist multi-process paths need the fork start method")


def state_arrays(model):
    return {k: np.asarray(v) for k, v in model.state_dict().items()}


def assert_states_equal(a, b, atol=0.0):
    assert set(a) == set(b)
    for key in a:
        if atol:
            np.testing.assert_allclose(a[key], b[key], rtol=0.0, atol=atol,
                                       err_msg=key)
        else:
            np.testing.assert_array_equal(a[key], b[key], err_msg=key)


class TestWorldOneParity:
    def test_bit_identical_to_seed_engine(self, mkg, model_factory):
        model_a, rng_a = model_factory(seed=0)
        base = TrainingEngine(model_a, mkg.split, rng_a,
                              OneToNObjective(batch_size=64))
        report_a = base.fit(2, eval_every=1)

        model_b, rng_b = model_factory(seed=0)
        dist = DistributedEngine(model_b, mkg.split, rng_b,
                                 OneToNObjective(batch_size=64), world_size=1)
        report_b = dist.fit(2, eval_every=1)

        assert report_a.epoch_losses == report_b.epoch_losses
        assert [m for _, _, m in report_a.eval_history] == \
               [m for _, _, m in report_b.eval_history]
        assert_states_equal(state_arrays(model_a), state_arrays(model_b))

    def test_from_engine_preserves_prepared_state(self, mkg, model_factory):
        model_a, rng_a = model_factory(seed=3)
        base = TrainingEngine(model_a, mkg.split, rng_a,
                              NegativeSamplingObjective(batch_size=128))
        report_a = base.fit(2)

        model_b, rng_b = model_factory(seed=3)
        plain = TrainingEngine(model_b, mkg.split, rng_b,
                               NegativeSamplingObjective(batch_size=128))
        adopted = DistributedEngine.from_engine(plain, world_size=1)
        report_b = adopted.fit(2)

        assert report_a.epoch_losses == report_b.epoch_losses
        assert_states_equal(state_arrays(model_a), state_arrays(model_b))


class TestWorldTwoParity:
    def test_1ton_trajectory_matches_single_process(self, mkg, model_factory):
        model_a, rng_a = model_factory(seed=0)
        base = TrainingEngine(model_a, mkg.split, rng_a,
                              OneToNObjective(batch_size=64))
        report_a = base.fit(2)

        model_b, rng_b = model_factory(seed=0)
        dist = DistributedEngine(model_b, mkg.split, rng_b,
                                 OneToNObjective(batch_size=64), world_size=2)
        report_b = dist.fit(2)

        # The shard-size-weighted gradient average equals the full-batch
        # gradient; only summation order differs.
        assert_states_equal(state_arrays(model_a), state_arrays(model_b),
                            atol=1e-10)
        np.testing.assert_allclose(report_a.epoch_losses,
                                   report_b.epoch_losses, atol=1e-10)

    def test_negative_sampling_runs_are_deterministic(self, mkg, model_factory):
        def run():
            model, rng = model_factory(seed=0)
            engine = DistributedEngine(
                model, mkg.split, rng,
                NegativeSamplingObjective(batch_size=128, num_negatives=2),
                world_size=2)
            report = engine.fit(2)
            return state_arrays(model), report.epoch_losses

        state_a, losses_a = run()
        state_b, losses_b = run()
        assert losses_a == losses_b
        assert all(np.isfinite(losses_a))
        assert_states_equal(state_a, state_b)

    def test_shutdown_leaves_no_workers(self, mkg, model_factory):
        model, rng = model_factory(seed=0)
        engine = DistributedEngine(model, mkg.split, rng,
                                   OneToNObjective(batch_size=64),
                                   world_size=2)
        engine.fit(1)  # fit() tears the pool down in its finally block
        assert engine._pool is None
        assert not [p for p in mp.active_children()
                    if p.name.startswith("repro-dist")]


class TestFaultHandling:
    def test_killed_worker_recovers_and_notifies(self, mkg, model_factory):
        events = []

        class Recorder(Callback):
            def on_worker_error(self, state, rank, exc):
                events.append((rank, exc))

        model, rng = model_factory(seed=0)
        engine = DistributedEngine(
            model, mkg.split, rng, OneToNObjective(batch_size=64),
            world_size=2, step_timeout=30.0, callbacks=[Recorder()],
            _fault_injection={1: (1, 2)})  # rank 1 dies at epoch 1, batch 2
        report = engine.fit(2)

        assert len(report.epoch_losses) == 2
        assert all(np.isfinite(report.epoch_losses))
        assert [rank for rank, _ in events] == [1]
        assert isinstance(events[0][1], WorkerFailure)
        assert engine.registry.get("dist_worker_failures_total").total() == 1
        assert engine.registry.get("dist_epoch_retries_total").total() == 1

    def test_callback_errors_are_swallowed(self, mkg, model_factory):
        class Exploder(Callback):
            def on_worker_error(self, state, rank, exc):
                raise RuntimeError("hook bug")

        model, rng = model_factory(seed=0)
        engine = DistributedEngine(
            model, mkg.split, rng, OneToNObjective(batch_size=64),
            world_size=2, callbacks=[Exploder()],
            _fault_injection={1: (1, 0)})
        report = engine.fit(1)
        assert np.isfinite(report.epoch_losses[0])

    def test_exhausted_retries_propagate(self, mkg, model_factory):
        failures = []

        class Recorder(Callback):
            def on_fit_error(self, state, exc):
                failures.append(exc)

        model, rng = model_factory(seed=0)
        engine = DistributedEngine(
            model, mkg.split, rng, OneToNObjective(batch_size=64),
            world_size=2, max_epoch_retries=0, callbacks=[Recorder()],
            _fault_injection={0: (1, 1)})
        with pytest.raises(WorkerFailure):
            engine.fit(1)
        assert len(failures) == 1
        assert engine._pool is None  # fit's finally still tore down


class TestValidation:
    def test_world_size_below_one_rejected(self, mkg, model_factory):
        model, rng = model_factory(seed=0)
        with pytest.raises(ValueError):
            DistributedEngine(model, mkg.split, rng,
                              OneToNObjective(batch_size=64), world_size=0)

    def test_unshardable_objective_rejected(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="cannot shard"):
            _num_batches(Opaque())


class TestEpochTracing:
    """Worker spans fan home on epoch_done and join the dist.epoch trace."""

    def test_worker_spans_join_the_epoch_trace(self, mkg, model_factory):
        from repro.obs import build_trace_trees, disable_tracing, tracing

        model, rng = model_factory()
        engine = DistributedEngine(model, mkg.split, rng,
                                   OneToNObjective(batch_size=64),
                                   world_size=2)
        try:
            with tracing() as tracer:
                engine.train_epoch()
                spans = list(tracer.spans)
        finally:
            disable_tracing()
            engine.shutdown()
        epochs = [s for s in spans if s["name"] == "dist.epoch"]
        assert len(epochs) == 1
        worker_epochs = [s for s in spans if s["name"] == "dist.worker.epoch"]
        assert len(worker_epochs) == 2
        assert sorted(s["rank"] for s in worker_epochs) == [0, 1]
        for span in worker_epochs:
            assert span["trace_id"] == epochs[0]["trace_id"]
            assert span["parent_id"] == epochs[0]["span_id"]
            assert span["pid"] != epochs[0]["pid"]
        batches = [s for s in spans if s["name"] == "dist.worker.batch"]
        assert batches
        worker_ids = {s["span_id"] for s in worker_epochs}
        assert all(s["parent_id"] in worker_ids for s in batches)
        [tree] = [t for t in build_trace_trees(spans)
                  if t["trace_id"] == epochs[0]["trace_id"]]
        assert len(tree["pids"]) == 3  # parent + 2 workers

    def test_disabled_tracing_ships_no_spans(self, mkg, model_factory):
        from repro.obs import get_tracer

        get_tracer().reset()  # drop spans recorded by earlier tests
        model, rng = model_factory()
        engine = DistributedEngine(model, mkg.split, rng,
                                   OneToNObjective(batch_size=64),
                                   world_size=2)
        try:
            assert not get_tracer().enabled
            engine.train_epoch()
        finally:
            engine.shutdown()
        assert len(get_tracer().spans) == 0
