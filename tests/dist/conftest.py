"""Shared tiny fixtures for the repro.dist tests."""

import numpy as np
import pytest

from repro.datasets import DRKGConfig, generate_drkg_mm


@pytest.fixture(scope="session")
def mkg():
    return generate_drkg_mm(DRKGConfig().scaled(0.12))


@pytest.fixture
def model_factory(mkg):
    """Deterministic fresh models: same seed -> bit-identical weights."""
    from repro.baselines import DistMult

    def make(seed=0, dim=16):
        rng = np.random.default_rng(seed)
        return DistMult(mkg.num_entities, mkg.num_relations, dim=dim,
                        rng=rng), rng

    return make
