"""Inductive row derivation: determinism, anchors, fallbacks."""

import numpy as np
import pytest

from repro.stream import EntitySpec, InductiveEncoder, StreamError


def encoder_for(model, mkg, feats=None):
    return InductiveEncoder(
        model, features=feats,
        calibration_texts=mkg.split.graph.entities.names())


class TestEntityRows:
    def test_deterministic(self, fresh):
        mkg, feats, model = fresh
        specs = [EntitySpec(name="N::1", description="probe")]
        triples = np.array([[model.num_entities, 0, 3]])
        a = encoder_for(model, mkg).encode_entities(specs, triples,
                                                    model.num_entities)
        b = encoder_for(model, mkg).encode_entities(specs, triples,
                                                    model.num_entities)
        np.testing.assert_array_equal(a.entity, b.entity)

    def test_translational_anchor_identity(self, fresh):
        """TransE rows follow e_t - e_r (new head) / e_h + e_r (new tail)."""
        mkg, _, model = fresh
        n = model.num_entities
        ent = model.entity_embedding.weight.data
        rel = model.relation_embedding.weight.data
        specs = [EntitySpec(name="N::1"), EntitySpec(name="N::2")]
        triples = np.array([[n, 0, 3],        # N::1 as head
                            [5, 1, n + 1]])   # N::2 as tail
        rows = encoder_for(model, mkg).encode_entities(specs, triples, n)
        np.testing.assert_allclose(rows.entity[0], ent[3] - rel[0])
        np.testing.assert_allclose(rows.entity[1], ent[5] + rel[1])

    def test_no_neighbours_falls_back_to_table_mean(self, fresh):
        mkg, _, model = fresh
        n = model.num_entities
        rows = encoder_for(model, mkg).encode_entities(
            [EntitySpec(name="lonely")], np.empty((0, 3), dtype=np.int64), n)
        np.testing.assert_allclose(
            rows.entity[0], model.entity_embedding.weight.data.mean(axis=0))

    def test_new_to_new_triples_give_no_anchor(self, fresh):
        mkg, _, model = fresh
        n = model.num_entities
        specs = [EntitySpec(name="N::1"), EntitySpec(name="N::2")]
        # Only triple links the two new entities -> both use the fallback.
        rows = encoder_for(model, mkg).encode_entities(
            specs, np.array([[n, 0, n + 1]]), n)
        mean = model.entity_embedding.weight.data.mean(axis=0)
        np.testing.assert_allclose(rows.entity[0], mean)
        np.testing.assert_allclose(rows.entity[1], mean)


class TestModalityRows:
    def test_came_rows_cover_every_table(self, fresh_came):
        mkg, _, model = fresh_came
        n = model.num_entities
        d_m = model.h_m_table.shape[1]
        specs = [EntitySpec(name="N::1", description="a compound",
                            molecule=np.linspace(0, 1, d_m)),
                 EntitySpec(name="N::2")]
        triples = np.array([[n, 0, 3], [5, 1, n + 1]])
        rows = encoder_for(model, mkg).encode_entities(specs, triples, n)
        assert rows.bias is not None and np.all(rows.bias == 0.0)
        np.testing.assert_allclose(rows.molecular[0], np.linspace(0, 1, d_m))
        assert np.all(rows.molecular[1] == 0.0)  # no molecule -> zero row
        np.testing.assert_array_equal(rows.has_molecule, [True, False])
        assert rows.textual.shape == (2, model.h_t_table.shape[1])
        # Structural rows are neighbour means over the trained table.
        np.testing.assert_allclose(rows.structural[0], model.h_s_table[3])
        np.testing.assert_allclose(rows.structural[1], model.h_s_table[5])

    def test_molecule_dim_mismatch_is_400(self, fresh_came):
        mkg, _, model = fresh_came
        spec = EntitySpec(name="N::1", molecule=np.zeros(99))
        with pytest.raises(StreamError) as excinfo:
            encoder_for(model, mkg).encode_entities(
                [spec], np.empty((0, 3), dtype=np.int64), model.num_entities)
        assert excinfo.value.status == 400

    def test_plain_model_without_features_skips_modality_rows(self, fresh):
        mkg, _, model = fresh
        rows = encoder_for(model, mkg).encode_entities(
            [EntitySpec(name="N::1")], np.empty((0, 3), dtype=np.int64),
            model.num_entities)
        assert rows.molecular is None and rows.textual is None
        assert rows.structural is None and rows.has_molecule is None
        assert rows.bias is None  # TransE has no entity bias

    def test_features_supply_dims_for_plain_models(self, fresh):
        mkg, feats, model = fresh
        rows = encoder_for(model, mkg, feats).encode_entities(
            [EntitySpec(name="N::1")], np.empty((0, 3), dtype=np.int64),
            model.num_entities)
        assert rows.textual.shape == (1, feats.textual.shape[1])
        assert rows.structural.shape == (1, feats.structural.shape[1])
