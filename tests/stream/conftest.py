"""Fixtures for the streaming-append tests.

Append tests mutate the vocabulary and the model tables, so unlike the
serve/pool suites nothing here is session-scoped: ``fresh`` hands every
test its own deep-copied world.
"""

import copy

import numpy as np
import pytest

from repro.baselines import build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm


@pytest.fixture(scope="module")
def base():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.12))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    return mkg, feats


@pytest.fixture()
def fresh(base):
    """A private (mkg, features, TransE model) triple, safe to mutate."""
    mkg, feats = copy.deepcopy(base)
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(1), dim=16)
    return mkg, feats, model


@pytest.fixture()
def fresh_came(base):
    mkg, feats = copy.deepcopy(base)
    model, _ = build_model("CamE", mkg, feats, np.random.default_rng(2), dim=16)
    return mkg, feats, model
