"""Plan/commit semantics and the live-engine append path."""

import numpy as np
import pytest

from repro.serve import PredictionEngine
from repro.stream import (
    EntitySpec,
    StreamError,
    apply_append,
    apply_append_to_model,
    commit_append,
    default_encoder,
    grow_features,
    parse_append_request,
    plan_append,
)


def body_for(mkg, name="NEW::1", extra_triples=()):
    tail = mkg.split.graph.entities.name(3)
    return {"entities": [{"name": name, "type": "Compound",
                          "description": "streamed"}],
            "triples": [[name, 0, tail], *extra_triples]}


class TestPlan:
    def test_assigns_contiguous_ids_and_resolves_references(self, fresh):
        mkg, _, model = fresh
        old = model.num_entities
        specs = [EntitySpec(name="NEW::1"), EntitySpec(name="NEW::2")]
        rel_name = mkg.split.graph.relations.name(1)
        raw = [["NEW::1", 0, mkg.split.graph.entities.name(3)],
               [5, rel_name, "NEW::2"],
               ["NEW::1", 2, "NEW::2"]]
        plan = plan_append(model, mkg.split, specs, raw,
                           encoder=default_encoder(model, mkg.split))
        assert plan.new_ids == [old, old + 1]
        np.testing.assert_array_equal(
            plan.triples, [[old, 0, 3], [5, 1, old + 1], [old, 2, old + 1]])
        # Nothing mutated at plan time.
        assert model.num_entities == old
        assert len(mkg.split.graph.entities) == old

    def test_existing_name_conflicts(self, fresh):
        mkg, _, model = fresh
        taken = mkg.split.graph.entities.name(0)
        with pytest.raises(StreamError) as excinfo:
            plan_append(model, mkg.split, [EntitySpec(name=taken)], [],
                        encoder=default_encoder(model, mkg.split))
        assert excinfo.value.status == 409

    def test_unknown_entity_name_suggests_close_matches(self, fresh):
        mkg, _, model = fresh
        real = mkg.split.graph.entities.name(3)
        typo = real[:-1] + ("x" if real[-1] != "x" else "y")
        with pytest.raises(StreamError) as excinfo:
            plan_append(model, mkg.split, [EntitySpec(name="NEW::1")],
                        [["NEW::1", 0, typo]],
                        encoder=default_encoder(model, mkg.split))
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown_entity"
        assert real in excinfo.value.message

    def test_out_of_range_id_and_unknown_relation(self, fresh):
        mkg, _, model = fresh
        enc = default_encoder(model, mkg.split)
        with pytest.raises(StreamError, match="out of range") as excinfo:
            plan_append(model, mkg.split, [EntitySpec(name="NEW::1")],
                        [[9999, 0, "NEW::1"]], encoder=enc)
        assert excinfo.value.code == "unknown_entity"
        with pytest.raises(StreamError) as excinfo:
            plan_append(model, mkg.split, [EntitySpec(name="NEW::1")],
                        [["NEW::1", "no-such-relation", 3]], encoder=enc)
        assert excinfo.value.code == "unknown_relation"


class TestCommit:
    def test_grows_model_and_vocab_with_identical_prefix(self, fresh):
        mkg, _, model = fresh
        old = model.num_entities
        before = model.entity_embedding.weight.data.copy()
        specs, raw = parse_append_request(body_for(mkg))
        plan = plan_append(model, mkg.split, specs, raw,
                           encoder=default_encoder(model, mkg.split))
        delta = commit_append(model, plan, generation=1)
        assert model.num_entities == old + 1
        assert model.entity_embedding.num_embeddings == old + 1
        assert len(mkg.split.graph.entities) == old + 1
        assert mkg.split.graph.entity_types[-1] == "Compound"
        np.testing.assert_array_equal(
            model.entity_embedding.weight.data[:old], before)
        assert delta.entity_ids == [old]
        # The grown row is scoreable through the normal inference path.
        scores = model.predict_tails(np.array([5]), np.array([0]))
        assert scores.shape == (1, old + 1)
        assert np.isfinite(scores[0, old])

    def test_came_append_grows_every_table(self, fresh_came):
        mkg, _, model = fresh_came
        old = model.num_entities
        prefix = model.predict_tails(np.array([0, 5]), np.array([0, 1]))
        apply_append_to_model(model, mkg.split, body_for(mkg))
        assert model.h_m_table.shape[0] == old + 1
        assert model.h_t_table.shape[0] == old + 1
        assert model.h_s_table.shape[0] == old + 1
        assert model.entity_bias.data.shape[0] == old + 1
        after = model.predict_tails(np.array([0, 5]), np.array([0, 1]))
        # Pre-existing prediction columns are bit-identical post-append.
        np.testing.assert_array_equal(after[:, :old], prefix)

    def test_grow_features_returns_new_matrices(self, fresh):
        mkg, feats, model = fresh
        old = len(feats.molecular)
        specs, raw = parse_append_request(body_for(mkg))
        plan = plan_append(model, mkg.split, specs, raw,
                           encoder=default_encoder(model, mkg.split,
                                                   features=feats))
        grown = grow_features(feats, plan)
        assert grown is not feats
        assert len(feats.molecular) == old  # original untouched
        assert grown.molecular.shape[0] == old + 1
        assert grown.has_molecule.shape[0] == old + 1

    def test_triple_only_append_leaves_tables_alone(self, fresh):
        mkg, _, model = fresh
        old = model.num_entities
        delta, _ = apply_append_to_model(model, mkg.split,
                                         {"triples": [[5, 0, 3]]})
        assert model.num_entities == old
        assert delta.num_new_entities == 0
        np.testing.assert_array_equal(delta.triples, [[5, 0, 3]])


class TestLiveEngine:
    def test_apply_append_end_to_end(self, fresh):
        mkg, _, model = fresh
        engine = PredictionEngine(model, mkg.split, model_name="TransE",
                                  cache_size=32)
        old = engine.num_entities
        baseline = engine.scores(np.array([5]), np.array([0])).copy()
        ids_before, scores_before = engine.top_k_tails(5, 0, k=5)

        delta = apply_append(engine, body_for(mkg))
        assert delta.generation == 1
        assert engine.stream_generation == 1
        assert engine.num_entities == old + 1 == model.num_entities

        after = engine.scores(np.array([5]), np.array([0]))
        np.testing.assert_array_equal(after[:, :old], baseline)
        ids_after, scores_after = engine.top_k_tails(5, 0, k=5)
        np.testing.assert_array_equal(ids_after, ids_before)
        np.testing.assert_array_equal(scores_after, scores_before)
        # The appended triple is a known triple now: filtered out.
        ids, _ = engine.top_k_tails(old, 0, k=old + 1, filter_known=True)
        assert 3 not in ids
        # Without filtering the new entity ranks normally from both ends.
        head_ids, _ = engine.top_k_heads(3, 0, k=old + 1, filter_known=False)
        assert old in head_ids

    def test_conflict_and_failed_plan_leave_engine_untouched(self, fresh):
        mkg, _, model = fresh
        engine = PredictionEngine(model, mkg.split, model_name="TransE")
        apply_append(engine, body_for(mkg))
        state = model.entity_embedding.weight.data.copy()
        with pytest.raises(StreamError) as excinfo:
            apply_append(engine, body_for(mkg))  # same name again
        assert excinfo.value.status == 409
        assert engine.stream_generation == 1  # not bumped
        np.testing.assert_array_equal(model.entity_embedding.weight.data, state)
        with pytest.raises(StreamError):
            apply_append(engine, {"entities": [{"name": "OK::1"}],
                                  "triples": [["OK::1", "bogus-rel", 3]]})
        assert len(mkg.split.graph.entities) == model.num_entities

    def test_generations_are_monotonic(self, fresh):
        mkg, _, model = fresh
        engine = PredictionEngine(model, mkg.split, model_name="TransE")
        for i in range(3):
            delta = apply_append(engine, body_for(mkg, name=f"GEN::{i}"))
            assert delta.generation == i + 1
        assert engine.stream_generation == 3
