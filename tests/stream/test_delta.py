"""Append-request parsing and the AppendDelta record."""

import json

import numpy as np
import pytest

from repro.stream import AppendDelta, StreamError, parse_append_request


class TestParse:
    def test_full_request(self):
        specs, triples = parse_append_request({
            "entities": [{"name": "X::1", "type": "Compound",
                          "description": "a probe", "molecule": [0.1, 0.2]}],
            "triples": [["X::1", 0, 3]],
        })
        assert specs[0].name == "X::1"
        assert specs[0].entity_type == "Compound"
        assert specs[0].text == "X::1. a probe"
        np.testing.assert_allclose(specs[0].molecule, [0.1, 0.2])
        assert triples == [["X::1", 0, 3]]

    def test_defaults(self):
        specs, _ = parse_append_request({"entities": [{"name": "X"}]})
        assert specs[0].entity_type == "Unknown"
        assert specs[0].molecule is None
        assert specs[0].text == "X"  # no trailing separator without a desc

    def test_triple_only_append(self):
        specs, triples = parse_append_request({"triples": [[0, 1, 2]]})
        assert specs == [] and len(triples) == 1

    @pytest.mark.parametrize("body", [
        None, [], "x",
        {},                                      # nothing to do
        {"entities": {}, "triples": []},         # wrong container
        {"entities": [["X"]]},                   # entity not an object
        {"entities": [{"name": ""}]},            # empty name
        {"entities": [{"name": 3}]},             # non-string name
        {"entities": [{"name": "X", "type": 1}]},
        {"entities": [{"name": "X", "description": 1}]},
        {"entities": [{"name": "X", "molecule": "CCO"}]},
        {"triples": [[0, 1]]},                   # malformed triple row
    ])
    def test_bad_requests_are_400(self, body):
        with pytest.raises(StreamError) as excinfo:
            parse_append_request(body)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"

    def test_duplicate_names_within_request_are_409(self):
        with pytest.raises(StreamError) as excinfo:
            parse_append_request({"entities": [{"name": "X"}, {"name": "X"}]})
        assert excinfo.value.status == 409
        assert excinfo.value.code == "conflict"


class TestDelta:
    def delta(self):
        return AppendDelta(
            generation=2, entity_names=["X"], entity_ids=[46],
            triples=np.array([[46, 0, 3], [5, 1, 46], [46, 0, 3]]),
            old_num_entities=46, num_entities=47, source="api",
            entity_types=["Compound"])

    def test_touched_keys_cover_both_directions_deduplicated(self):
        keys = self.delta().touched_keys(num_relations=13)
        # (h, r) and (t, r + R) per triple, first-seen order, no repeats.
        assert keys == [(46, 0), (3, 13), (5, 1), (46, 14)]

    def test_log_entry_is_json_safe(self):
        entry = self.delta().log_entry()
        round_tripped = json.loads(json.dumps(entry))
        assert round_tripped["generation"] == 2
        assert round_tripped["entity_ids"] == [46]
        assert round_tripped["num_triples"] == 3
        assert round_tripped["num_entities"] == 47
