"""TSV persistence round-trips."""

import numpy as np
import pytest

from repro.kg import KnowledgeGraph, Vocabulary, load_kg, read_triples_tsv, save_kg, write_triples_tsv


def sample_graph():
    return KnowledgeGraph(
        entities=Vocabulary(["aspirin", "COX1", "pain"]),
        relations=Vocabulary(["inhibits", "treats"]),
        triples=np.array([[0, 0, 1], [0, 1, 2]]),
        entity_types=["Compound", "Gene", "Disease"],
        name="toy",
    )


class TestRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path):
        g = sample_graph()
        save_kg(str(tmp_path), g)
        loaded = load_kg(str(tmp_path), name="toy")
        assert loaded.entities.names() == g.entities.names()
        assert loaded.relations.names() == g.relations.names()
        np.testing.assert_array_equal(loaded.triples, g.triples)
        assert loaded.entity_types == g.entity_types

    def test_triples_tsv_roundtrip(self, tmp_path):
        g = sample_graph()
        path = str(tmp_path / "t.tsv")
        write_triples_tsv(path, g)
        back = read_triples_tsv(path, g)
        np.testing.assert_array_equal(back, g.triples)

    def test_write_subset(self, tmp_path):
        g = sample_graph()
        path = str(tmp_path / "sub.tsv")
        write_triples_tsv(path, g, triples=g.triples[:1])
        assert len(read_triples_tsv(path, g)) == 1

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tb\n")
        with pytest.raises(ValueError, match="bad.tsv:1"):
            read_triples_tsv(str(path), sample_graph())

    def test_blank_lines_skipped(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "t.tsv"
        path.write_text("aspirin\tinhibits\tCOX1\n\n")
        assert len(read_triples_tsv(str(path), g)) == 1
