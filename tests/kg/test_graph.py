"""KnowledgeGraph and Vocabulary behaviour."""

import numpy as np
import pytest

from repro.kg import KnowledgeGraph, Vocabulary


def toy_graph() -> KnowledgeGraph:
    entities = Vocabulary(["d1", "d2", "g1", "g2", "dis1"])
    relations = Vocabulary(["targets", "treats"])
    triples = np.array([
        [0, 0, 2],  # d1 targets g1
        [1, 0, 2],  # d2 targets g1
        [0, 1, 4],  # d1 treats dis1
        [1, 0, 3],  # d2 targets g2
    ])
    return KnowledgeGraph(entities=entities, relations=relations, triples=triples,
                          entity_types=["Compound", "Compound", "Gene", "Gene", "Disease"])


class TestVocabulary:
    def test_add_idempotent(self):
        v = Vocabulary()
        assert v.add("a") == v.add("a") == 0

    def test_bidirectional_lookup(self):
        v = Vocabulary(["x", "y"])
        assert v.id("y") == 1
        assert v.name(1) == "y"

    def test_contains_len_iter(self):
        v = Vocabulary(["a", "b"])
        assert "a" in v and "z" not in v
        assert len(v) == 2
        assert list(v) == ["a", "b"]

    def test_missing_name_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().id("ghost")

    def test_names_returns_copy(self):
        v = Vocabulary(["a"])
        names = v.names()
        names.append("b")
        assert len(v) == 1


class TestKnowledgeGraph:
    def test_sizes(self):
        g = toy_graph()
        assert (g.num_entities, g.num_relations, g.num_triples) == (5, 2, 4)
        assert len(g) == 4

    def test_out_of_range_entity_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeGraph(Vocabulary(["a"]), Vocabulary(["r"]),
                           np.array([[0, 0, 5]]))

    def test_out_of_range_relation_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeGraph(Vocabulary(["a", "b"]), Vocabulary(["r"]),
                           np.array([[0, 3, 1]]))

    def test_entity_types_length_checked(self):
        with pytest.raises(ValueError):
            KnowledgeGraph(Vocabulary(["a", "b"]), Vocabulary(["r"]),
                           np.array([[0, 0, 1]]), entity_types=["X"])

    def test_entity_degrees(self):
        g = toy_graph()
        np.testing.assert_array_equal(g.entity_degrees(), [2, 2, 2, 1, 1])

    def test_relation_frequencies(self):
        np.testing.assert_array_equal(toy_graph().relation_frequencies(), [3, 1])

    def test_type_counts(self):
        assert toy_graph().type_counts() == {"Compound": 2, "Gene": 2, "Disease": 1}

    def test_relation_family(self):
        g = toy_graph()
        assert g.relation_family(0) == "Compound-Gene"
        assert g.relation_family(1) == "Compound-Disease"

    def test_family_triple_counts_canonical(self):
        counts = toy_graph().family_triple_counts()
        assert counts == {"Compound-Gene": 3, "Compound-Disease": 1}

    def test_adjacency(self):
        adj = toy_graph().adjacency()
        assert (0, 2) in adj[0] and (1, 4) in adj[0]

    def test_undirected_neighbors_symmetric(self):
        neigh = toy_graph().undirected_neighbors()
        assert 0 in neigh[2] and 2 in neigh[0]

    def test_triple_set(self):
        s = toy_graph().triple_set()
        assert (0, 0, 2) in s and len(s) == 4

    def test_subsample_keeps_vocab(self):
        g = toy_graph()
        sub = g.subsample(0.5, np.random.default_rng(0))
        assert sub.num_entities == g.num_entities
        assert sub.num_triples <= g.num_triples

    def test_subsample_invalid_fraction(self):
        with pytest.raises(ValueError):
            toy_graph().subsample(0.0, np.random.default_rng(0))

    def test_with_triples_shares_vocab(self):
        g = toy_graph()
        g2 = g.with_triples(g.triples[:2], suffix="-half")
        assert g2.num_triples == 2
        assert g2.entities is g.entities
