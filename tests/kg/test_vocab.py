"""Vocabulary lookup helpers, including the serving-layer resolve()."""

import pytest

from repro.kg import Vocabulary


@pytest.fixture()
def vocab():
    return Vocabulary(["aspirin", "asparagine", "warfarin"])


class TestBasics:
    def test_get_returns_default_on_miss(self, vocab):
        assert vocab.get("aspirin") == 0
        assert vocab.get("nope") is None
        assert vocab.get("nope", -1) == -1


class TestResolve:
    def test_name_and_id_forms(self, vocab):
        assert vocab.resolve("warfarin") == 2
        assert vocab.resolve(1) == 1
        assert vocab.resolve("1") == 1  # digit strings are ids

    def test_unknown_name_suggests_close_matches(self, vocab):
        with pytest.raises(KeyError) as excinfo:
            vocab.resolve("asprin")
        assert "aspirin" in excinfo.value.args[0]

    def test_out_of_range_id(self, vocab):
        with pytest.raises(IndexError, match="out of range"):
            vocab.resolve(99)
        with pytest.raises(IndexError):
            vocab.resolve("99")


class TestExtend:
    """Streaming-append edge cases: the vocabulary end of POST /append."""

    def test_appended_names_get_contiguous_ids(self, vocab):
        assert vocab.extend(["heparin", "insulin"]) == [3, 4]
        assert vocab.resolve("heparin") == 3
        assert len(vocab) == 5

    def test_zero_appends_is_a_noop(self, vocab):
        before = vocab.names()
        assert vocab.extend([]) == []
        assert vocab.names() == before

    def test_existing_name_rejected_atomically(self, vocab):
        with pytest.raises(ValueError, match="aspirin"):
            vocab.extend(["heparin", "aspirin"])
        # Nothing from the rejected batch leaked in.
        assert vocab.get("heparin") is None
        assert len(vocab) == 3

    def test_duplicate_within_batch_rejected(self, vocab):
        with pytest.raises(ValueError, match="duplicate.*heparin"):
            vocab.extend(["heparin", "heparin"])
        assert vocab.get("heparin") is None

    def test_close_match_resolves_against_appended_names(self, vocab):
        vocab.extend(["rivaroxaban"])
        with pytest.raises(KeyError) as excinfo:
            vocab.resolve("rivaroxiban")
        assert "rivaroxaban" in excinfo.value.args[0]

    def test_ids_stable_across_save_load_round_trip(self, vocab, tmp_path):
        import numpy as np

        from repro.kg import KnowledgeGraph
        from repro.kg.io import load_kg, save_kg

        vocab.extend(["heparin", "insulin"])
        graph = KnowledgeGraph(
            entities=vocab, relations=Vocabulary(["treats"]),
            triples=np.array([[3, 0, 0], [4, 0, 2]]),
            entity_types=["Compound"] * len(vocab))
        save_kg(str(tmp_path), graph)
        loaded = load_kg(str(tmp_path))
        assert loaded.entities.names() == vocab.names()
        assert loaded.entities.resolve("heparin") == 3
        np.testing.assert_array_equal(loaded.triples, graph.triples)
        # A second round trip after another append keeps earlier ids.
        loaded.entities.extend(["metformin"])
        loaded.entity_types.append("Compound")
        save_kg(str(tmp_path), loaded)
        again = load_kg(str(tmp_path))
        assert again.entities.resolve("metformin") == 5
        assert again.entities.resolve("aspirin") == 0
