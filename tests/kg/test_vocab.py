"""Vocabulary lookup helpers, including the serving-layer resolve()."""

import pytest

from repro.kg import Vocabulary


@pytest.fixture()
def vocab():
    return Vocabulary(["aspirin", "asparagine", "warfarin"])


class TestBasics:
    def test_get_returns_default_on_miss(self, vocab):
        assert vocab.get("aspirin") == 0
        assert vocab.get("nope") is None
        assert vocab.get("nope", -1) == -1


class TestResolve:
    def test_name_and_id_forms(self, vocab):
        assert vocab.resolve("warfarin") == 2
        assert vocab.resolve(1) == 1
        assert vocab.resolve("1") == 1  # digit strings are ids

    def test_unknown_name_suggests_close_matches(self, vocab):
        with pytest.raises(KeyError) as excinfo:
            vocab.resolve("asprin")
        assert "aspirin" in excinfo.value.args[0]

    def test_out_of_range_id(self, vocab):
        with pytest.raises(IndexError, match="out of range"):
            vocab.resolve(99)
        with pytest.raises(IndexError):
            vocab.resolve("99")
