"""Negative sampling: corruption, Bernoulli statistics, filtering."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import (
    KnowledgeGraph,
    NegativeSampler,
    Vocabulary,
    bernoulli_probabilities,
    self_adversarial_weights,
)


def line_graph(n=20):
    """A path graph: entity i -> i+1 with relation 0."""
    triples = np.array([[i, 0, i + 1] for i in range(n - 1)])
    return KnowledgeGraph(
        entities=Vocabulary([f"e{i}" for i in range(n)]),
        relations=Vocabulary(["next"]),
        triples=triples,
    )


class TestBernoulliProbabilities:
    def test_one_to_many_relation_prefers_head_corruption(self):
        # Relation 0: head 0 links to many tails (1-to-N) -> tph high ->
        # corrupt the head more often.
        triples = np.array([[0, 0, t] for t in range(1, 8)])
        probs = bernoulli_probabilities(triples, 1)
        assert probs[0] > 0.8

    def test_many_to_one_relation_prefers_tail_corruption(self):
        triples = np.array([[h, 0, 9] for h in range(7)])
        probs = bernoulli_probabilities(triples, 1)
        assert probs[0] < 0.2

    def test_unseen_relation_defaults_half(self):
        triples = np.array([[0, 0, 1]])
        probs = bernoulli_probabilities(triples, 3)
        assert probs[1] == probs[2] == 0.5


class TestSelfAdversarialWeights:
    def test_weights_sum_to_one(self):
        scores = np.random.default_rng(0).normal(size=(4, 6))
        w = self_adversarial_weights(scores)
        np.testing.assert_allclose(w.sum(axis=-1), np.ones(4))

    def test_harder_negatives_weighted_more(self):
        scores = np.array([[1.0, 5.0, 0.0]])
        w = self_adversarial_weights(scores)[0]
        assert w[1] == w.max()

    def test_temperature_sharpens(self):
        scores = np.array([[0.0, 1.0]])
        cold = self_adversarial_weights(scores, temperature=0.1)[0]
        hot = self_adversarial_weights(scores, temperature=5.0)[0]
        assert hot[1] > cold[1]


class TestNegativeSampler:
    def test_output_shape(self):
        g = line_graph()
        sampler = NegativeSampler(g, g.triples, np.random.default_rng(0))
        neg = sampler.corrupt(g.triples, num_negatives=3)
        assert neg.shape == (3 * len(g.triples), 3)

    def test_corrupts_exactly_one_slot(self):
        g = line_graph()
        sampler = NegativeSampler(g, g.triples, np.random.default_rng(0), filtered=False)
        neg = sampler.corrupt(g.triples, 1)
        for pos, cor in zip(g.triples, neg):
            changed = (pos != cor).sum()
            assert changed <= 1  # relation never changes; one endpoint may

    def test_filtered_avoids_true_triples(self):
        g = line_graph(8)
        sampler = NegativeSampler(g, g.triples, np.random.default_rng(0), filtered=True)
        true = g.triple_set()
        for _ in range(10):
            neg = sampler.corrupt(g.triples, 2)
            collisions = sum(tuple(map(int, row)) in true for row in neg)
            # Resampling caps at 20 tries, so collisions are rare not impossible.
            assert collisions <= len(neg) * 0.05

    def test_handles_inverse_relation_ids(self):
        g = line_graph()
        augmented = g.triples.copy()
        augmented[:, 1] += g.num_relations  # simulate inverse ids
        sampler = NegativeSampler(g, augmented, np.random.default_rng(0))
        neg = sampler.corrupt(augmented, 1)
        assert (neg[:, 1] == g.num_relations).all()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1_000_000))
    def test_entities_in_range_property(self, seed):
        g = line_graph()
        sampler = NegativeSampler(g, g.triples, np.random.default_rng(seed))
        neg = sampler.corrupt(g.triples, 2)
        assert neg[:, [0, 2]].min() >= 0
        assert neg[:, [0, 2]].max() < g.num_entities


class TestSamplerSpawn:
    """Per-shard RNG contract: spawn(offset) is a pure function of the seed."""

    def test_same_seed_same_offset_identical_streams(self):
        g = line_graph()
        a = NegativeSampler(g, g.triples, np.random.default_rng(7))
        b = NegativeSampler(g, g.triples, np.random.default_rng(7))
        child_a, child_b = a.spawn(3), b.spawn(3)
        for _ in range(5):
            np.testing.assert_array_equal(child_a.corrupt(g.triples, 2),
                                          child_b.corrupt(g.triples, 2))

    def test_different_offsets_diverge(self):
        g = line_graph()
        sampler = NegativeSampler(g, g.triples, np.random.default_rng(7))
        neg0 = sampler.spawn(0).corrupt(g.triples, 4)
        neg1 = sampler.spawn(1).corrupt(g.triples, 4)
        assert not np.array_equal(neg0, neg1)

    def test_spawn_does_not_consume_parent_stream(self):
        g = line_graph()
        a = NegativeSampler(g, g.triples, np.random.default_rng(7))
        b = NegativeSampler(g, g.triples, np.random.default_rng(7))
        a.spawn(0), a.spawn(1)  # must not advance a.rng
        np.testing.assert_array_equal(a.corrupt(g.triples, 2),
                                      b.corrupt(g.triples, 2))

    def test_spawn_independent_of_parent_consumption(self):
        # The child stream depends only on (seed, offset), not on how
        # much of the parent stream was drawn before spawning.
        g = line_graph()
        fresh = NegativeSampler(g, g.triples, np.random.default_rng(7))
        drained = NegativeSampler(g, g.triples, np.random.default_rng(7))
        drained.corrupt(g.triples, 3)  # consume some parent stream
        np.testing.assert_array_equal(fresh.spawn(2).corrupt(g.triples, 2),
                                      drained.spawn(2).corrupt(g.triples, 2))

    def test_child_shares_tables_and_filtering(self):
        g = line_graph(8)
        sampler = NegativeSampler(g, g.triples, np.random.default_rng(0),
                                  filtered=True)
        child = sampler.spawn(1)
        assert child.filtered is True
        assert child.num_entities == g.num_entities
        assert child._true is sampler._true
        true = g.triple_set()
        for _ in range(10):
            neg = child.corrupt(g.triples, 2)
            collisions = sum(tuple(map(int, row)) in true for row in neg)
            assert collisions <= len(neg) * 0.05
