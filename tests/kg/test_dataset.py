"""Splits, inverse relations, and 1-to-N batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import (
    KnowledgeGraph,
    OneToNBatcher,
    Vocabulary,
    add_inverse_relations,
    split_triples,
)


def random_graph(num_entities=30, num_relations=4, num_triples=200, seed=0):
    rng = np.random.default_rng(seed)
    triples = np.unique(np.stack([
        rng.integers(0, num_entities, num_triples),
        rng.integers(0, num_relations, num_triples),
        rng.integers(0, num_entities, num_triples),
    ], axis=1), axis=0)
    return KnowledgeGraph(
        entities=Vocabulary([f"e{i}" for i in range(num_entities)]),
        relations=Vocabulary([f"r{i}" for i in range(num_relations)]),
        triples=triples,
    )


class TestSplit:
    def test_partition_is_exact(self):
        g = random_graph()
        split = split_triples(g, np.random.default_rng(0))
        total = len(split.train) + len(split.valid) + len(split.test)
        assert total == g.num_triples
        all_rows = {tuple(t) for t in np.concatenate([split.train, split.valid, split.test])}
        assert all_rows == g.triple_set()

    def test_ratios_must_sum_to_one(self):
        with pytest.raises(ValueError):
            split_triples(random_graph(), np.random.default_rng(0), ratios=(0.5, 0.2, 0.2))

    def test_eval_entities_seen_in_train(self):
        g = random_graph(num_entities=50, num_triples=120, seed=3)
        split = split_triples(g, np.random.default_rng(1))
        seen = set(split.train[:, 0]) | set(split.train[:, 2])
        for part in (split.valid, split.test):
            for h, r, t in part:
                assert h in seen and t in seen
                assert r in set(split.train[:, 1])

    def test_summary_keys(self):
        split = split_triples(random_graph(), np.random.default_rng(0))
        assert set(split.summary()) == {"#Ent", "#Rel", "#Train", "#Valid", "#Test"}

    def test_all_true_covers_everything(self):
        g = random_graph()
        split = split_triples(g, np.random.default_rng(0))
        assert split.all_true() == g.triple_set()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_split_property_random_seeds(self, seed):
        g = random_graph(seed=seed % 5)
        split = split_triples(g, np.random.default_rng(seed))
        assert len(split.train) >= int(0.8 * g.num_triples) - 1
        assert len(split.train) + len(split.valid) + len(split.test) == g.num_triples


class TestInverseRelations:
    def test_doubles_triples(self):
        triples = np.array([[0, 1, 2], [3, 0, 4]])
        out = add_inverse_relations(triples, num_relations=2)
        assert len(out) == 4
        np.testing.assert_array_equal(out[2], [2, 3, 0])
        np.testing.assert_array_equal(out[3], [4, 2, 3])

    def test_original_kept_first(self):
        triples = np.array([[0, 0, 1]])
        out = add_inverse_relations(triples, num_relations=1)
        np.testing.assert_array_equal(out[0], triples[0])


class TestOneToNBatcher:
    def test_every_query_appears_once_per_epoch(self):
        g = random_graph()
        triples = add_inverse_relations(g.triples, g.num_relations)
        batcher = OneToNBatcher(triples, g.num_entities, batch_size=7,
                                rng=np.random.default_rng(0))
        seen = []
        for heads, rels, labels, cands in batcher.epoch():
            seen.extend(zip(heads.tolist(), rels.tolist()))
        assert len(seen) == batcher.num_queries
        assert len(set(seen)) == len(seen)

    def test_full_labels_mark_all_true_tails(self):
        triples = np.array([[0, 0, 1], [0, 0, 2], [3, 0, 1]])
        batcher = OneToNBatcher(triples, num_entities=5, batch_size=10,
                                rng=np.random.default_rng(0), label_smoothing=0.0)
        for heads, rels, labels, cands in batcher.epoch():
            assert cands is None
            for row, (h, r) in enumerate(zip(heads, rels)):
                if (h, r) == (0, 0):
                    np.testing.assert_array_equal(labels[row], [0, 1, 1, 0, 0])

    def test_label_smoothing_bounds(self):
        triples = np.array([[0, 0, 1]])
        batcher = OneToNBatcher(triples, num_entities=4, batch_size=1,
                                rng=np.random.default_rng(0), label_smoothing=0.1)
        __, __, labels, __ = next(iter(batcher.epoch()))
        assert labels.max() < 1.0 and labels.min() > 0.0

    def test_negative_sampling_mode_includes_true_tails(self):
        triples = np.array([[0, 0, 1], [0, 0, 2]])
        batcher = OneToNBatcher(triples, num_entities=50, batch_size=4,
                                rng=np.random.default_rng(0),
                                label_smoothing=0.0, negatives=10)
        heads, rels, labels, cands = next(iter(batcher.epoch()))
        assert cands is not None
        assert cands.shape == labels.shape
        # The first columns carry the true tails with label 1.
        assert labels[0, 0] == 1.0 and labels[0, 1] == 1.0

    def test_negative_mode_accidental_positive_relabelled(self):
        # Half the entities are true tails, so sampled negatives collide
        # often; colliding columns must be relabelled positive.
        triples = np.array([[0, 0, t] for t in range(1, 4)])
        true_tails = {1, 2, 3}
        batcher = OneToNBatcher(triples, num_entities=6, batch_size=1,
                                rng=np.random.default_rng(0),
                                label_smoothing=0.0, negatives=4)
        __, __, labels, cands = next(iter(batcher.epoch()))
        for col in range(cands.shape[1]):
            if int(cands[0, col]) in true_tails:
                assert labels[0, col] == 1.0

    def test_len_counts_batches(self):
        g = random_graph()
        batcher = OneToNBatcher(g.triples, g.num_entities, batch_size=8,
                                rng=np.random.default_rng(0))
        assert len(batcher) == (batcher.num_queries + 7) // 8

    def test_negatives_fallback_to_full_when_too_many(self):
        triples = np.array([[0, 0, 1], [2, 0, 3]])
        batcher = OneToNBatcher(triples, num_entities=4, batch_size=4,
                                rng=np.random.default_rng(0), negatives=1000)
        assert batcher.negatives is None
        __, __, labels, cands = next(iter(batcher.epoch()))
        assert cands is None and labels.shape[1] == 4
