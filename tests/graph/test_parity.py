"""Bit-parity of the refactored stacks against pre-GraphData references.

Every encoder and query that moved onto :mod:`repro.graph` is checked
here against an inline reimplementation of its former per-stack code:
GIN featurization/batching and embeddings (exact), CompGCN layer and
encoder outputs (exact for sub/mult; FFT correlation vs the former
roll-and-sum loop to 1e-12), and the KnowledgeGraph neighbourhood /
relation-family queries (exact, including ``Counter.most_common``
tie-break order).
"""

from collections import Counter, defaultdict

import numpy as np
import pytest

from repro import nn
from repro.gnn import CompGCNEncoder, CompGCNLayer, as_relational_graph
from repro.graph import GraphData
from repro.kg import KnowledgeGraph, Vocabulary
from repro.mol import ELEMENTS, Atom, Bond, MoleculeGenerator, Molecule
from repro.mol.gin import NODE_FEATURE_DIM, GINEncoder, batch_graph, batch_molecules
from repro.nn import functional as F


def random_molecules(count: int = 6, seed: int = 0) -> list[Molecule]:
    gen = MoleculeGenerator(np.random.default_rng(seed))
    return [gen.generate_random() for _ in range(count)]


# ----------------------------------------------------------------------
# GIN: featurization + batching + embeddings
# ----------------------------------------------------------------------
def reference_batch_molecules(molecules):
    """The former per-molecule Python-loop batching."""
    xs, edges, graph_ids = [], [], []
    offset = 0
    for idx, mol in enumerate(molecules):
        x = np.zeros((mol.num_atoms, NODE_FEATURE_DIM))
        degrees = np.zeros(mol.num_atoms, dtype=np.int64)
        for bond in mol.bonds:
            degrees[bond.i] += 1
            degrees[bond.j] += 1
        for a, atom in enumerate(mol.atoms):
            x[a, atom.element_id] = 1.0
            x[a, len(ELEMENTS) + min(int(degrees[a]), 6)] = 1.0
        src = [b.i for b in mol.bonds] + [b.j for b in mol.bonds]
        dst = [b.j for b in mol.bonds] + [b.i for b in mol.bonds]
        xs.append(x)
        edges.append(np.array([src, dst], dtype=np.int64) + offset)
        graph_ids.extend([idx] * mol.num_atoms)
        offset += mol.num_atoms
    if not molecules:
        return (np.zeros((0, NODE_FEATURE_DIM)), np.zeros((2, 0), dtype=np.int64),
                np.zeros(0, dtype=np.int64))
    return (np.concatenate(xs), np.concatenate(edges, axis=1),
            np.asarray(graph_ids, dtype=np.int64))


class TestGINParity:
    def test_batching_matches_reference_exactly(self):
        mols = random_molecules()
        x, edge_index, graph_ids = batch_molecules(mols)
        ref_x, ref_edges, ref_ids = reference_batch_molecules(mols)
        np.testing.assert_array_equal(x, ref_x)
        np.testing.assert_array_equal(edge_index, ref_edges)
        np.testing.assert_array_equal(graph_ids, ref_ids)

    def test_empty_batch_matches_reference(self):
        x, edge_index, graph_ids = batch_molecules([])
        ref_x, ref_edges, ref_ids = reference_batch_molecules([])
        np.testing.assert_array_equal(x, ref_x)
        np.testing.assert_array_equal(edge_index, ref_edges)
        np.testing.assert_array_equal(graph_ids, ref_ids)

    def test_list_and_graphdata_paths_identical(self):
        mols = random_molecules(seed=1)
        enc = GINEncoder(hidden_dim=16, num_layers=2, rng=np.random.default_rng(0))
        via_list = enc.encode(mols)
        via_graph = enc.encode(batch_graph(mols))
        np.testing.assert_array_equal(via_list, via_graph)

    def test_batched_rows_match_individual_encodes(self):
        mols = random_molecules(count=4, seed=2)
        enc = GINEncoder(hidden_dim=16, num_layers=2, rng=np.random.default_rng(0))
        batched = enc.encode(mols)
        for row, mol in enumerate(mols):
            single = enc.encode([mol])
            np.testing.assert_allclose(batched[row], single[0],
                                       rtol=0.0, atol=1e-12)

    def test_zero_atom_molecule_in_batch(self):
        empty = Molecule(atoms=[], bonds=[])
        mols = [empty] + random_molecules(count=2, seed=3)
        enc = GINEncoder(hidden_dim=8, num_layers=2, rng=np.random.default_rng(0))
        emb = enc.encode(mols)
        assert emb.shape == (3, 8)
        assert np.isfinite(emb).all()
        np.testing.assert_array_equal(emb[0], enc.encode([empty])[0])


# ----------------------------------------------------------------------
# CompGCN: layer and encoder vs the former triple-slicing formulation
# ----------------------------------------------------------------------
def corr_loop(a: nn.Tensor, b: nn.Tensor) -> nn.Tensor:
    """The former O(d^2) roll-and-sum circular correlation (forward only)."""
    ad = a.data
    bd = b.data if b.data.ndim > 1 else b.data[None, :]
    bd = np.broadcast_to(bd, ad.shape)
    d = ad.shape[-1]
    out = np.stack([(ad * np.roll(bd, -k, axis=-1)).sum(axis=-1)
                    for k in range(d)], axis=-1)
    return nn.Tensor(out)


def reference_layer_forward(layer: CompGCNLayer, entity_emb, relation_emb,
                            edges, num_entities, compose_fn):
    """Pre-GraphData layer: slice the triple array, per-direction passes."""
    heads, rels, tails = edges[:, 0], edges[:, 1], edges[:, 2]
    z = F.index(relation_emb, rels)
    agg_out = F.scatter_mean(
        layer.w_out(compose_fn(F.index(entity_emb, heads), z)), tails, num_entities)
    agg_in = F.scatter_mean(
        layer.w_in(compose_fn(F.index(entity_emb, tails), z)), heads, num_entities)
    loop = layer.w_loop(compose_fn(entity_emb, layer.loop_rel))
    out = F.add(F.add(F.add(agg_out, agg_in), loop), layer.bias)
    return F.tanh(out), layer.w_rel(relation_emb)


def toy_edges(num_entities=10, num_relations=3, n=40, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack([
        rng.integers(0, num_entities, n),
        rng.integers(0, num_relations, n),
        rng.integers(0, num_entities, n),
    ], axis=1)


class TestCompGCNParity:
    @pytest.mark.parametrize("composition,compose_fn",
                             [("sub", F.sub), ("mult", F.mul)])
    def test_layer_exact_for_elementwise_compositions(self, composition, compose_fn):
        edges = toy_edges()
        rng = np.random.default_rng(0)
        layer = CompGCNLayer(8, 8, rng=rng, composition=composition)
        ent = nn.Tensor(rng.normal(size=(10, 8)))
        rel = nn.Tensor(rng.normal(size=(3, 8)))
        with nn.no_grad():
            got, got_rel = layer(ent, rel, edges, 10)
            ref, ref_rel = reference_layer_forward(layer, ent, rel, edges, 10,
                                                   compose_fn)
        np.testing.assert_array_equal(got.data, ref.data)
        np.testing.assert_array_equal(got_rel.data, ref_rel.data)

    def test_layer_corr_fft_matches_loop_reference(self):
        edges = toy_edges(seed=1)
        rng = np.random.default_rng(0)
        layer = CompGCNLayer(8, 8, rng=rng, composition="corr")
        ent = nn.Tensor(rng.normal(size=(10, 8)))
        rel = nn.Tensor(rng.normal(size=(3, 8)))
        with nn.no_grad():
            got, _ = layer(ent, rel, edges, 10)
            ref, _ = reference_layer_forward(layer, ent, rel, edges, 10, corr_loop)
        np.testing.assert_allclose(got.data, ref.data, rtol=0.0, atol=1e-12)

    @pytest.mark.parametrize("composition", ["sub", "mult", "corr"])
    def test_raw_edges_and_graphdata_identical(self, composition):
        edges = toy_edges(seed=2)
        enc = CompGCNEncoder(10, 3, dim=8, num_layers=2, composition=composition,
                             rng=np.random.default_rng(0))
        ent_raw, rel_raw = enc(edges)
        ent_g, rel_g = enc(as_relational_graph(edges, 10))
        np.testing.assert_array_equal(ent_raw.data, ent_g.data)
        np.testing.assert_array_equal(rel_raw.data, rel_g.data)


# ----------------------------------------------------------------------
# KnowledgeGraph: CSR-backed queries vs the former per-triple loops
# ----------------------------------------------------------------------
def toy_kg(seed=0, num_entities=15, num_relations=5, num_triples=80):
    rng = np.random.default_rng(seed)
    triples = np.stack([
        rng.integers(0, num_entities, num_triples),
        rng.integers(0, num_relations, num_triples),
        rng.integers(0, num_entities, num_triples),
    ], axis=1)
    types = [str(rng.choice(["Gene", "Compound", "Disease"]))
             for _ in range(num_entities)]
    return KnowledgeGraph(
        entities=Vocabulary(f"e{i}" for i in range(num_entities)),
        relations=Vocabulary(f"r{i}" for i in range(num_relations)),
        triples=triples,
        entity_types=types,
    )


def reference_adjacency(kg):
    adj = defaultdict(list)
    for h, r, t in kg.triples:
        adj[int(h)].append((int(r), int(t)))
    return dict(adj)


def reference_undirected(kg):
    nb = defaultdict(set)
    for h, _, t in kg.triples:
        nb[int(h)].add(int(t))
        nb[int(t)].add(int(h))
    return dict(nb)


def reference_families(kg):
    families = {}
    for rel_id in range(kg.num_relations):
        mask = kg.triples[:, 1] == rel_id
        if not mask.any():
            families[rel_id] = "Unknown"
            continue
        heads = Counter(kg.entity_types[h] for h in kg.triples[mask, 0])
        tails = Counter(kg.entity_types[t] for t in kg.triples[mask, 2])
        families[rel_id] = (f"{heads.most_common(1)[0][0]}-"
                            f"{tails.most_common(1)[0][0]}")
    return families


class TestKGQueryParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_adjacency_exact(self, seed):
        kg = toy_kg(seed)
        assert kg.adjacency() == reference_adjacency(kg)

    @pytest.mark.parametrize("seed", range(5))
    def test_undirected_neighbors_exact(self, seed):
        kg = toy_kg(seed)
        assert kg.undirected_neighbors() == reference_undirected(kg)

    @pytest.mark.parametrize("seed", range(5))
    def test_relation_families_exact(self, seed):
        # Few entities + few types forces heavy majority ties, so the
        # Counter.most_common first-occurrence tie-break is exercised.
        kg = toy_kg(seed, num_entities=6, num_relations=4, num_triples=120)
        assert kg.relation_families() == reference_families(kg)
        for rel_id in range(kg.num_relations):
            assert kg.relation_family(rel_id) == reference_families(kg)[rel_id]

    def test_unknown_relation_id(self):
        kg = toy_kg()
        assert kg.relation_family(999) == "Unknown"

    def test_zero_triple_kg(self):
        kg = KnowledgeGraph(
            entities=Vocabulary(["a", "b"]),
            relations=Vocabulary(["r"]),
            triples=np.zeros((0, 3), dtype=np.int64),
            entity_types=["Gene", "Compound"],
        )
        assert kg.adjacency() == {}
        assert kg.undirected_neighbors() == {}
        assert kg.relation_families() == {0: "Unknown"}
        graph = kg.to_graph()
        assert graph.num_edges == 0
        np.testing.assert_array_equal(graph.out_degrees(), [0, 0])
        np.testing.assert_array_equal(graph.in_degrees(), [0, 0])

    def test_to_graph_cached_and_consistent(self):
        kg = toy_kg(1)
        graph = kg.to_graph()
        assert graph is kg.to_graph()
        assert graph.num_nodes == kg.num_entities
        np.testing.assert_array_equal(graph.src, kg.triples[:, 0])
        np.testing.assert_array_equal(graph.edge_type, kg.triples[:, 1])
        np.testing.assert_array_equal(graph.dst, kg.triples[:, 2])
