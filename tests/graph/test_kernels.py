"""Message-passing kernels: values, gradients, empty-graph edge cases."""

import numpy as np
import pytest

from repro import nn
from repro.graph import GraphData, gather_scatter, propagate, readout
from repro.nn import functional as F
from repro.nn.gradcheck import check_gradients


def toy_graph():
    # 0 -> 1, 0 -> 2, 1 -> 2
    return GraphData(num_nodes=3, src=[0, 0, 1], dst=[1, 2, 2])


class TestGatherScatter:
    def test_sum_matches_manual(self):
        g = toy_graph()
        h = np.arange(6, dtype=np.float64).reshape(3, 2)
        out = gather_scatter(nn.Tensor(h), g.src, g.dst, g.num_nodes)
        expected = np.zeros((3, 2))
        for s, d in zip(g.src, g.dst):
            expected[d] += h[s]
        np.testing.assert_array_equal(out.data, expected)

    def test_mean_matches_manual(self):
        g = toy_graph()
        h = np.arange(6, dtype=np.float64).reshape(3, 2)
        out = gather_scatter(nn.Tensor(h), g.src, g.dst, g.num_nodes, reduce="mean")
        # Node 2 receives from 0 and 1; node 1 from 0; node 0 nothing.
        np.testing.assert_allclose(out.data[2], (h[0] + h[1]) / 2.0)
        np.testing.assert_allclose(out.data[1], h[0])
        np.testing.assert_array_equal(out.data[0], [0.0, 0.0])

    def test_edge_transform_receives_positions(self):
        g = toy_graph()
        h = np.ones((3, 2))
        seen = {}

        def transform(messages, positions):
            seen["positions"] = positions
            return F.mul(messages, 2.0)

        out = gather_scatter(nn.Tensor(h), g.src, g.dst, g.num_nodes,
                             edge_transform=transform)
        np.testing.assert_array_equal(seen["positions"], [0, 1, 2])
        np.testing.assert_array_equal(out.data[2], [4.0, 4.0])

    def test_unknown_reduce_rejected(self):
        with pytest.raises(ValueError):
            gather_scatter(nn.Tensor(np.ones((2, 2))), np.array([0]),
                           np.array([1]), 2, reduce="max")

    def test_empty_edges_zero_output(self):
        h = np.ones((4, 3))
        for reduce in ("sum", "mean"):
            out = gather_scatter(nn.Tensor(h), np.empty(0, dtype=np.int64),
                                 np.empty(0, dtype=np.int64), 4, reduce=reduce)
            np.testing.assert_array_equal(out.data, np.zeros((4, 3)))

    def test_empty_edges_with_transform_uses_transform_width(self):
        h = np.ones((4, 3))
        lin = nn.Linear(3, 5, rng=np.random.default_rng(0))
        out = gather_scatter(nn.Tensor(h), np.empty(0, dtype=np.int64),
                             np.empty(0, dtype=np.int64), 4,
                             edge_transform=lambda m, _: lin(m))
        assert out.shape == (4, 5)
        np.testing.assert_array_equal(out.data, np.zeros((4, 5)))

    def test_gradients(self):
        g = toy_graph()
        check_gradients(
            lambda h: gather_scatter(h, g.src, g.dst, g.num_nodes), [np.random.default_rng(0).normal(size=(3, 2))])
        check_gradients(
            lambda h: gather_scatter(h, g.src, g.dst, g.num_nodes, reduce="mean"),
            [np.random.default_rng(1).normal(size=(3, 2))])


class TestPropagate:
    def test_forward_and_reverse(self):
        g = toy_graph()
        h = np.arange(6, dtype=np.float64).reshape(3, 2)
        fwd = propagate(nn.Tensor(h), g)
        rev = propagate(nn.Tensor(h), g, reverse=True)
        manual_fwd = gather_scatter(nn.Tensor(h), g.src, g.dst, 3)
        manual_rev = gather_scatter(nn.Tensor(h), g.dst, g.src, 3)
        np.testing.assert_array_equal(fwd.data, manual_fwd.data)
        np.testing.assert_array_equal(rev.data, manual_rev.data)


class TestReadout:
    def test_batched_pooling(self):
        g = GraphData.batch([
            GraphData(num_nodes=2, src=[0], dst=[1]),
            GraphData(num_nodes=1, src=[], dst=[]),
        ])
        h = np.array([[1.0], [2.0], [5.0]])
        np.testing.assert_array_equal(readout(nn.Tensor(h), g).data,
                                      [[3.0], [5.0]])
        np.testing.assert_array_equal(
            readout(nn.Tensor(h), g, reduce="mean").data, [[1.5], [5.0]])

    def test_empty_member_graph_pools_to_zero(self):
        g = GraphData.batch([
            GraphData(num_nodes=0, src=[], dst=[]),
            GraphData(num_nodes=2, src=[], dst=[]),
        ])
        h = np.ones((2, 3))
        out = readout(nn.Tensor(h), g)
        np.testing.assert_array_equal(out.data[0], np.zeros(3))
        np.testing.assert_array_equal(out.data[1], [2.0, 2.0, 2.0])

    def test_unknown_reduce_rejected(self):
        g = toy_graph()
        with pytest.raises(ValueError):
            readout(nn.Tensor(np.ones((3, 1))), g, reduce="max")


class TestEmptyScatters:
    """Scatter/segment primitives with zero-length index arrays."""

    def test_scatter_sum_empty(self):
        out = F.scatter_sum(nn.Tensor(np.zeros((0, 4))),
                            np.empty(0, dtype=np.int64), 3)
        np.testing.assert_array_equal(out.data, np.zeros((3, 4)))

    def test_scatter_mean_empty(self):
        out = F.scatter_mean(nn.Tensor(np.zeros((0, 4))),
                             np.empty(0, dtype=np.int64), 3)
        np.testing.assert_array_equal(out.data, np.zeros((3, 4)))

    def test_segment_sum_empty_and_backward(self):
        src = nn.Tensor(np.zeros((0, 2)), requires_grad=True)
        out = F.segment_sum(src, np.array([0, 0, 0]))
        np.testing.assert_array_equal(out.data, np.zeros((2, 2)))
        out.sum().backward()
        np.testing.assert_array_equal(src.grad, np.zeros((0, 2)))

    def test_segment_sum_values(self):
        src = np.arange(8, dtype=np.float64).reshape(4, 2)
        out = F.segment_sum(nn.Tensor(src), np.array([0, 1, 1, 4]))
        np.testing.assert_array_equal(out.data,
                                      [[0.0, 1.0], [0.0, 0.0], [12.0, 15.0]])

    def test_segment_mean_values(self):
        src = np.arange(8, dtype=np.float64).reshape(4, 2)
        out = F.segment_mean(nn.Tensor(src), np.array([0, 1, 1, 4]))
        np.testing.assert_array_equal(out.data,
                                      [[0.0, 1.0], [0.0, 0.0], [4.0, 5.0]])

    def test_segment_sum_indptr_mismatch_rejected(self):
        with pytest.raises(ValueError):
            F.segment_sum(nn.Tensor(np.zeros((3, 2))), np.array([0, 2]))

    def test_segment_matches_scatter(self):
        rng = np.random.default_rng(2)
        src = rng.normal(size=(10, 3))
        indptr = np.array([0, 4, 4, 7, 10])
        ids = np.repeat(np.arange(4), np.diff(indptr))
        seg = F.segment_sum(nn.Tensor(src), indptr)
        sca = F.scatter_sum(nn.Tensor(src), ids, 4)
        np.testing.assert_allclose(seg.data, sca.data)
