"""CSR builders and the GraphData container."""

import numpy as np
import pytest

from repro.graph import GraphData, build_csr, counts_to_indptr, pack_csr_rows


class TestCountsToIndptr:
    def test_basic(self):
        np.testing.assert_array_equal(counts_to_indptr([2, 0, 3]), [0, 2, 2, 5])

    def test_empty(self):
        np.testing.assert_array_equal(counts_to_indptr([]), [0])


class TestBuildCSR:
    def test_groups_rows_stably(self):
        row_ids = np.array([2, 0, 2, 1, 0])
        indptr, order = build_csr(row_ids, 3)
        np.testing.assert_array_equal(indptr, [0, 2, 3, 5])
        # Within each row, original positions appear in ascending order.
        np.testing.assert_array_equal(order, [1, 4, 3, 0, 2])

    def test_empty_rows_allowed(self):
        indptr, order = build_csr(np.array([3]), 5)
        np.testing.assert_array_equal(indptr, [0, 0, 0, 0, 1, 1])
        np.testing.assert_array_equal(order, [0])

    def test_zero_items(self):
        indptr, order = build_csr(np.empty(0, dtype=np.int64), 4)
        np.testing.assert_array_equal(indptr, [0, 0, 0, 0, 0])
        assert len(order) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_csr(np.array([0, 5]), 3)
        with pytest.raises(ValueError):
            build_csr(np.array([-1]), 3)

    def test_matches_loop_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n_rows = int(rng.integers(1, 8))
            row_ids = rng.integers(0, n_rows, size=int(rng.integers(0, 30)))
            indptr, order = build_csr(row_ids, n_rows)
            for row in range(n_rows):
                expected = np.flatnonzero(row_ids == row)
                got = order[indptr[row]:indptr[row + 1]]
                np.testing.assert_array_equal(got, expected)


class TestPackCSRRows:
    def _reference(self, codes, values):
        rows = {}
        for c, v in zip(codes, values):
            rows.setdefault(int(c), set()).add(int(v))
        keys = sorted(rows)
        packed = [sorted(rows[k]) for k in keys]
        indptr = np.cumsum([0] + [len(p) for p in packed])
        flat = [v for p in packed for v in p]
        return (np.array(keys, dtype=np.int64), indptr.astype(np.int64),
                np.array(flat, dtype=np.int64))

    def test_sorts_and_dedups(self):
        codes = np.array([5, 1, 5, 5, 1])
        values = np.array([3, 0, 3, 1, 2])
        keys, indptr, values_out = pack_csr_rows(codes, values, 4)
        np.testing.assert_array_equal(keys, [1, 5])
        np.testing.assert_array_equal(indptr, [0, 2, 4])
        np.testing.assert_array_equal(values_out, [0, 2, 1, 3])

    def test_empty(self):
        keys, indptr, values = pack_csr_rows(np.empty(0), np.empty(0), 10)
        assert len(keys) == 0 and len(values) == 0
        np.testing.assert_array_equal(indptr, [0])

    def test_fused_and_lexsort_paths_agree(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 50, size=200)
        values = rng.integers(0, 7, size=200)
        ref = self._reference(codes, values)
        # Small value_range -> fused fast path.
        fused = pack_csr_rows(codes, values, 7)
        # Huge codes force the lexsort path.
        big = pack_csr_rows(codes + (2**62 // 7), values, 7)
        for got in (fused,):
            for a, b in zip(got, ref):
                np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(big[1], ref[1])
        np.testing.assert_array_equal(big[2], ref[2])


def chain_graph():
    # 0 -> 1 -> 2, plus 0 -> 2
    return GraphData(num_nodes=3, src=[0, 1, 0], dst=[1, 2, 2],
                     edge_type=[0, 1, 0])


class TestGraphData:
    def test_validation(self):
        with pytest.raises(ValueError):
            GraphData(num_nodes=2, src=[0], dst=[1, 0])
        with pytest.raises(ValueError):
            GraphData(num_nodes=2, src=[0], dst=[5])
        with pytest.raises(ValueError):
            GraphData(num_nodes=2, src=[0], dst=[1], edge_type=[0, 1])
        with pytest.raises(ValueError):
            GraphData(num_nodes=2, src=[0], dst=[1],
                      node_feat={"x": np.zeros((3, 2))})
        with pytest.raises(ValueError):
            GraphData(num_nodes=2, src=[0], dst=[1],
                      edge_feat={"w": np.zeros((2, 1))})

    def test_sizes_and_edge_index(self):
        g = chain_graph()
        assert g.num_edges == 3
        np.testing.assert_array_equal(g.edge_index, [[0, 1, 0], [1, 2, 2]])

    def test_csr_forward_and_reverse(self):
        g = chain_graph()
        fwd = g.csr()
        np.testing.assert_array_equal(fwd.indptr, [0, 2, 3, 3])
        np.testing.assert_array_equal(fwd.neighbors, [1, 2, 2])
        np.testing.assert_array_equal(fwd.edge_ids, [0, 2, 1])
        rev = g.csr(reverse=True)
        np.testing.assert_array_equal(rev.indptr, [0, 0, 1, 3])
        np.testing.assert_array_equal(rev.neighbors, [0, 1, 0])
        neighbors, edge_ids = fwd.row(0)
        np.testing.assert_array_equal(neighbors, [1, 2])
        np.testing.assert_array_equal(edge_ids, [0, 2])

    def test_csr_cached(self):
        g = chain_graph()
        assert g.csr() is g.csr()
        assert g.csr(reverse=True) is g.csr(reverse=True)
        assert g.csr() is not g.csr(reverse=True)

    def test_degrees(self):
        g = chain_graph()
        np.testing.assert_array_equal(g.out_degrees(), [2, 1, 0])
        np.testing.assert_array_equal(g.in_degrees(), [0, 1, 2])

    def test_sparse_adjacency_export(self):
        g = chain_graph()
        weights = np.array([10.0, 20.0, 30.0])
        indptr, indices, data = g.to_sparse_adjacency(weights)
        np.testing.assert_array_equal(indptr, [0, 2, 3, 3])
        np.testing.assert_array_equal(indices, [1, 2, 2])
        # Row data follows CSR order: edges 0, 2 then edge 1.
        np.testing.assert_array_equal(data, [10.0, 30.0, 20.0])
        _, _, ones = g.to_sparse_adjacency()
        np.testing.assert_array_equal(ones, [1.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            g.to_sparse_adjacency(np.ones(2))

    def test_dense_adjacency_counts_multi_edges(self):
        g = GraphData(num_nodes=2, src=[0, 0], dst=[1, 1])
        np.testing.assert_array_equal(g.to_dense_adjacency(),
                                      [[0.0, 2.0], [0.0, 0.0]])


class TestBatching:
    def test_disjoint_union(self):
        g1 = GraphData(num_nodes=2, src=[0], dst=[1], edge_type=[3],
                       node_feat={"x": np.ones((2, 4))})
        g2 = GraphData(num_nodes=3, src=[0, 2], dst=[1, 1], edge_type=[5, 7],
                       node_feat={"x": np.zeros((3, 4))})
        b = GraphData.batch([g1, g2])
        assert b.num_nodes == 5 and b.num_edges == 3 and b.num_graphs == 2
        np.testing.assert_array_equal(b.src, [0, 2, 4])
        np.testing.assert_array_equal(b.dst, [1, 3, 3])
        np.testing.assert_array_equal(b.edge_type, [3, 5, 7])
        np.testing.assert_array_equal(b.graph_ids, [0, 0, 1, 1, 1])
        np.testing.assert_array_equal(b.graph_sizes(), [2, 3])
        assert b.node_feat["x"].shape == (5, 4)

    def test_empty_member_graph(self):
        g1 = GraphData(num_nodes=0, src=[], dst=[])
        g2 = GraphData(num_nodes=2, src=[0], dst=[1])
        b = GraphData.batch([g1, g2])
        assert b.num_nodes == 2 and b.num_graphs == 2
        np.testing.assert_array_equal(b.graph_ids, [1, 1])
        np.testing.assert_array_equal(b.graph_sizes(), [0, 2])

    def test_empty_batch(self):
        b = GraphData.batch([])
        assert b.num_nodes == 0 and b.num_edges == 0 and b.num_graphs == 0

    def test_rejects_nested_batch(self):
        b = GraphData.batch([GraphData(num_nodes=1, src=[], dst=[]),
                             GraphData(num_nodes=1, src=[], dst=[])])
        with pytest.raises(ValueError):
            GraphData.batch([b])

    def test_rejects_mixed_typing(self):
        g1 = GraphData(num_nodes=1, src=[0], dst=[0], edge_type=[0])
        g2 = GraphData(num_nodes=1, src=[0], dst=[0])
        with pytest.raises(ValueError):
            GraphData.batch([g1, g2])

    def test_rejects_missing_feature(self):
        g1 = GraphData(num_nodes=1, src=[], dst=[],
                       node_feat={"x": np.zeros((1, 2))})
        g2 = GraphData(num_nodes=1, src=[], dst=[])
        with pytest.raises(ValueError):
            GraphData.batch([g1, g2])
