"""CompGCN encoder: compositions, propagation, pre-training export."""

import numpy as np
import pytest

from repro import nn
from repro.gnn import CompGCNEncoder, CompGCNLayer, compose, pretrain_structural_embeddings
from repro.nn import Tensor


def toy_edges(num_entities=10, num_relations=3, n=30, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack([
        rng.integers(0, num_entities, n),
        rng.integers(0, num_relations, n),
        rng.integers(0, num_entities, n),
    ], axis=1)


class TestCompose:
    def test_sub(self):
        out = compose(Tensor(np.ones((2, 4))), Tensor(np.full((2, 4), 0.5)), "sub")
        np.testing.assert_allclose(out.data, np.full((2, 4), 0.5))

    def test_mult(self):
        out = compose(Tensor(np.full((2, 4), 2.0)), Tensor(np.full((2, 4), 3.0)), "mult")
        np.testing.assert_allclose(out.data, np.full((2, 4), 6.0))

    def test_corr_matches_numpy_reference(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(2, 4)), rng.normal(size=(2, 4))
        out = compose(Tensor(a), Tensor(b), "corr").data
        for row in range(2):
            for k in range(4):
                expected = sum(a[row, i] * b[row, (i + k) % 4] for i in range(4))
                assert out[row, k] == pytest.approx(expected)

    def test_corr_broadcast_1d_relation(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(3, 4)), rng.normal(size=4)
        out = compose(Tensor(a), Tensor(b), "corr")
        assert out.shape == (3, 4)

    def test_unknown_composition_raises(self):
        with pytest.raises(ValueError):
            compose(Tensor(np.ones((1, 2))), Tensor(np.ones((1, 2))), "xor")


class TestLayerAndEncoder:
    @pytest.mark.parametrize("composition", ["sub", "mult", "corr"])
    def test_forward_shapes(self, composition):
        edges = toy_edges()
        enc = CompGCNEncoder(10, 3, dim=8, composition=composition,
                             rng=np.random.default_rng(0))
        ent, rel = enc(edges)
        assert ent.shape == (10, 8)
        assert rel.shape == (3, 8)

    def test_layer_rejects_bad_composition(self):
        with pytest.raises(ValueError):
            CompGCNLayer(4, 4, np.random.default_rng(0), composition="nope")

    def test_multiple_layers_stack(self):
        enc = CompGCNEncoder(10, 3, dim=8, num_layers=2, rng=np.random.default_rng(0))
        ent, rel = enc(toy_edges())
        assert ent.shape == (10, 8)

    def test_gradients_reach_base_embeddings(self):
        enc = CompGCNEncoder(10, 3, dim=8, rng=np.random.default_rng(0))
        ent, rel = enc(toy_edges())
        (ent.sum() + rel.sum()).backward()
        assert enc.entity_base.grad is not None
        assert enc.relation_base.grad is not None

    def test_distmult_decoder_shape(self):
        enc = CompGCNEncoder(10, 3, dim=8, rng=np.random.default_rng(0))
        ent, rel = enc(toy_edges())
        scores = enc.score_distmult(ent, rel, np.array([0, 1]), np.array([2, 0]))
        assert scores.shape == (2, 10)

    def test_isolated_entity_still_embedded(self):
        edges = np.array([[0, 0, 1]])
        enc = CompGCNEncoder(5, 1, dim=4, rng=np.random.default_rng(0))
        ent, _ = enc(edges)
        assert np.isfinite(ent.data).all()


class TestPretraining:
    def test_returns_entity_matrix(self):
        edges = toy_edges(num_entities=12, n=50)
        emb = pretrain_structural_embeddings(edges, 12, 3, dim=6,
                                             rng=np.random.default_rng(0), epochs=2)
        assert emb.shape == (12, 6)
        assert np.isfinite(emb).all()

    def test_export_pass_samples_like_training_epochs(self):
        # Regression: the final no-grad export used to encode the *first*
        # max_message_edges triples instead of drawing the same capped
        # random subset the training epochs use.  With epochs=0 the rng
        # consumption is exactly: encoder init, then one subset draw.
        edges = toy_edges(num_entities=12, n=50, seed=3)
        cap = 20
        emb = pretrain_structural_embeddings(
            edges, 12, 3, dim=6, rng=np.random.default_rng(7), epochs=0,
            max_message_edges=cap)

        replay = np.random.default_rng(7)
        encoder = CompGCNEncoder(12, 3, dim=6, rng=replay)
        subset = edges[replay.choice(len(edges), cap, replace=False)]
        with nn.no_grad():
            expected, _ = encoder(subset)
        np.testing.assert_array_equal(emb, expected.data)

        # The old first-N behaviour produces a different export.
        with nn.no_grad():
            first_n, _ = encoder(edges[:cap])
        assert not np.array_equal(emb, first_n.data)

    def test_export_uncapped_uses_all_edges(self):
        edges = toy_edges(num_entities=12, n=30, seed=4)
        emb = pretrain_structural_embeddings(
            edges, 12, 3, dim=6, rng=np.random.default_rng(5), epochs=0,
            max_message_edges=100)
        replay = np.random.default_rng(5)
        encoder = CompGCNEncoder(12, 3, dim=6, rng=replay)
        with nn.no_grad():
            expected, _ = encoder(edges)
        np.testing.assert_array_equal(emb, expected.data)

    def test_training_reduces_loss(self):
        from repro.nn import functional as F
        edges = toy_edges(num_entities=12, n=60, seed=1)
        rng = np.random.default_rng(0)
        enc = CompGCNEncoder(12, 3, dim=8, rng=rng)
        opt = nn.Adam(list(enc.parameters()), lr=0.02)
        labels = np.zeros((len(edges), 12))
        labels[np.arange(len(edges)), edges[:, 2]] = 1.0
        losses = []
        for _ in range(8):
            opt.zero_grad()
            ent, rel = enc(edges)
            logits = enc.score_distmult(ent, rel, edges[:, 0], edges[:, 1])
            loss = F.bce_with_logits(logits, labels)
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]
