"""Legacy shim so `pip install -e .` works without the `wheel` package.

Configuration lives in pyproject.toml; this file only enables
`setup.py develop`-style editable installs in offline environments.
"""
from setuptools import setup

setup()
