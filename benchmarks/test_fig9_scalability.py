"""Fig. 9 benchmark: train/test time scaling with KG size."""

import numpy as np

from repro.experiments import render_fig9, run_fig9

from conftest import publish


def _slope(points):
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    return np.polyfit(xs, ys, 1)[0]


def test_fig9_scalability(benchmark, sweep_scale, capsys):
    points = run_fig9(sweep_scale)
    publish("fig9_scalability", render_fig9(points), capsys)

    by_variant: dict[str, list[tuple[float, float]]] = {}
    for p in points:
        by_variant.setdefault(p.variant, []).append((p.fraction, p.train_seconds))

    # Paper shape: train time grows with KG size for the full model.
    full = sorted(by_variant["full"])
    assert full[-1][1] > full[0][1] * 0.8

    # Paper shape: the TCA operator dominates cost -- variants without it
    # are the cheapest.
    mean_cost = {v: float(np.mean([t for _, t in pts]))
                 for v, pts in by_variant.items()}
    assert mean_cost["w/o M and R"] < mean_cost["full"]
    assert mean_cost["w/o TCA"] < mean_cost["full"]

    benchmark.pedantic(
        lambda: run_fig9(sweep_scale, variants=("full",), fractions=(0.5,)),
        rounds=2, iterations=1,
    )
