"""Table III benchmark: the headline CamE-vs-baselines comparison.

Trains all 14 models on both synthetic datasets (cached for reuse by
later benchmarks), prints the paper-shaped table, asserts the paper's
qualitative ordering, and times CamE inference as the measured kernel.
"""

import numpy as np
import pytest

from repro.experiments import (
    improvement_over_best_competitor,
    render_table3,
    run_table3,
    train_model,
)

from conftest import publish


@pytest.fixture(scope="module")
def table3_results(bench_scale):
    # Mean over two independently seeded replicates (dataset + model),
    # the resolution needed for a stable ordering at CPU scale.
    return run_table3(bench_scale, num_seeds=2)


def test_table3_drkg_mm(benchmark, bench_scale, table3_results, capsys):
    results = table3_results["drkg-mm"]
    publish("table3_drkg_mm", render_table3({"drkg-mm": results}), capsys)

    # Paper shape, asserted at the resolution the ~180-triple test set
    # affords (single-seed ordering inside the top cluster is noise; see
    # EXPERIMENTS.md): CamE belongs to the top MRR cluster, and the
    # co-attention family (CamE / MKGformer) beats every translational
    # multimodal baseline on Hits@1, where deep entity-relation
    # interaction matters most.
    came = results["CamE"]
    best_other_mrr = max(m.mrr for n, m in results.items() if n != "CamE")
    assert came.mrr >= best_other_mrr * 0.90, "CamE fell out of the top MRR cluster"
    for translational in ("IKRL", "MTAKGR", "TransAE"):
        assert came.hits[1] > results[translational].hits[1], (
            f"CamE should beat {translational} on Hits@1")
    assert results["MKGformer"].mrr > results["TransAE"].mrr

    run = train_model("CamE", "drkg-mm", bench_scale)
    heads, rels = np.array([0, 1, 2, 3]), np.array([0, 1, 2, 0])
    benchmark(lambda: run.model.predict_tails(heads, rels))


def test_table3_omaha_mm(benchmark, bench_scale, table3_results, capsys):
    results = table3_results["omaha-mm"]
    publish("table3_omaha_mm", render_table3({"omaha-mm": results}), capsys)

    came = results["CamE"]
    # Paper shape on the sparser, molecule-free OMAHA-MM: the margin is
    # much smaller than on DRKG-MM (paper: +4.8% vs +10.3% MRR).  At CPU
    # scale seed variance is comparable to that margin, so assert CamE
    # lands within tolerance of the second-best competitor.
    others = sorted((m.mrr for n, m in results.items() if n != "CamE"),
                    reverse=True)
    assert came.mrr >= others[1] * 0.93, (
        "CamE should rank at/near top-2 MRR on OMAHA-MM")

    run = train_model("CamE", "omaha-mm", bench_scale, negatives_1ton=1000)
    heads, rels = np.array([0, 1, 2, 3]), np.array([0, 1, 2, 0])
    benchmark(lambda: run.model.predict_tails(heads, rels))


def test_table3_improvement_summary(benchmark, table3_results, capsys):
    lines = ["Table III summary: CamE improvement over best competitor"]
    for dataset, results in table3_results.items():
        mrr = improvement_over_best_competitor(results, "mrr")
        h1 = improvement_over_best_competitor(results, "hits1")
        lines.append(f"  {dataset:10s}  MRR {mrr:+.1f}%   Hits@1 {h1:+.1f}%"
                     f"   (paper: +10.3% / +16.2% DRKG, +4.8% / +7.0% OMAHA)")
    publish("table3_summary", "\n".join(lines), capsys)
    benchmark(lambda: improvement_over_best_competitor(
        table3_results["drkg-mm"], "mrr"))
