"""Fig. 4 benchmark: long-tail frequency distributions."""

from repro.experiments import get_prepared, render_fig4, run_fig4

from conftest import publish


def test_fig4_long_tail(benchmark, bench_scale, capsys):
    stats = run_fig4(bench_scale)
    publish("fig4_longtail", render_fig4(stats), capsys)

    for dataset, s in stats.items():
        # Paper shape: heavily skewed distributions on both KGs.
        assert s.gini > 0.15, f"{dataset} should be long-tailed"
        assert s.top1pct_share > 0.02

    mkg, _ = get_prepared("drkg-mm", bench_scale)
    benchmark(lambda: (mkg.graph.entity_degrees(),
                       mkg.graph.relation_frequencies()))
