"""Serve-tier benchmark: closed-loop load against threaded vs pool modes.

Drives a fixed number of keep-alive HTTP clients (each issuing its next
request only after the previous response lands) against three server
configurations on the same model:

* the threaded stdlib server (``--pool 0`` — the baseline tier),
* the process pool at 1 and 4 workers (zero-copy replicas behind the
  asyncio front end),

recording queries/sec and admitted p50/p99 latency per configuration
into ``benchmarks/results/BENCH_serve.json``.  A final **past-saturation**
run (more offered load than a small queue can hold, with per-request
fault-injection delay so service time is deterministic) checks graceful
degradation: every response is either 200 or a 429 shed carrying
``Retry-After``, and the p99 of *admitted* requests stays bounded by the
queue depth times the service time instead of growing with offered load.

The ISSUE acceptance bar — >= 2.5x q/s over the threaded baseline at 4
workers — is asserted only on hosts with >= 4 usable cores; smaller CI
boxes still produce the JSON record.  Set ``BENCH_SERVE_QUICK=1`` for a
reduced request count.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import numpy as np

from repro.baselines import build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.pool import PoolConfig, PoolServer
from repro.serve import MicroBatcher, PredictionEngine
from repro.serve.http import make_server

from conftest import RESULTS_DIR

QUICK = bool(os.environ.get("BENCH_SERVE_QUICK"))
CLIENTS = 8
REQUESTS_PER_CLIENT = 25 if QUICK else 120
DIM = 32
POOL_SIZES = (1, 4)
MIN_POOL_SPEEDUP = 2.5
#: Keep the engine LRU small so the load is scoring work, not dict hits.
CACHE_SIZE = 8

SATURATION_DELAY = 0.02      # injected per-request service time (seconds)
SATURATION_DEPTH = 4         # max queued per endpoint before shedding
SATURATION_REQUESTS = 15 if QUICK else 40


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def build_fixture():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.3))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6,
                           d_s=6, gin_epochs=1, compgcn_epochs=1)
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(1),
                           dim=DIM)
    return mkg, model


def run_load(port: int, *, clients: int, per_client: int, queries,
             deadline_ms: float | None = None) -> dict:
    """Closed loop: each client thread sends its next request only after
    the previous response; returns q/s plus latency/code breakdown."""
    latencies: list[float] = []
    codes: dict[int, int] = {}
    retry_after_ok = True
    lock = threading.Lock()
    start_gate = threading.Barrier(clients + 1)

    def client_main(idx: int) -> None:
        nonlocal retry_after_ok
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        local_lat, local_codes, local_retry = [], {}, True
        start_gate.wait()
        for i in range(per_client):
            head, rel = queries[(idx * per_client + i) % len(queries)]
            body = {"head": int(head), "relation": int(rel), "k": 10}
            if deadline_ms is not None:
                body["deadline_ms"] = deadline_ms
            payload = json.dumps(body)
            tick = time.perf_counter()
            conn.request("POST", "/predict", body=payload,
                         headers={"Content-Type": "application/json",
                                  "X-Client-Id": f"bench-{idx}"})
            response = conn.getresponse()
            response.read()
            elapsed = time.perf_counter() - tick
            local_codes[response.status] = local_codes.get(
                response.status, 0) + 1
            if response.status == 200:
                local_lat.append(elapsed)
            elif response.status == 429:
                if response.getheader("Retry-After") is None:
                    local_retry = False
        conn.close()
        with lock:
            latencies.extend(local_lat)
            for code, count in local_codes.items():
                codes[code] = codes.get(code, 0) + count
            retry_after_ok = retry_after_ok and local_retry

    threads = [threading.Thread(target=client_main, args=(i,), daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    start_gate.wait()
    tick = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - tick

    admitted = np.sort(np.asarray(latencies)) if latencies else np.zeros(1)
    return {
        "clients": clients,
        "requests": clients * per_client,
        "wall_seconds": round(wall, 4),
        "qps": round(clients * per_client / wall, 2),
        "codes": {str(k): v for k, v in sorted(codes.items())},
        "admitted_p50_ms": round(1e3 * float(np.quantile(admitted, 0.5)), 3),
        "admitted_p99_ms": round(1e3 * float(np.quantile(admitted, 0.99)), 3),
        "retry_after_on_all_429s": retry_after_ok,
    }


def test_serve_throughput_and_shedding():
    mkg, model = build_fixture()
    queries = [(int(h), int(r)) for h, r in mkg.split.test[:256, :2]]
    cores = usable_cores()
    record = {"quick": QUICK, "dim": DIM, "cores": cores,
              "clients": CLIENTS, "modes": {}}

    # --- baseline: threaded server, batcher attached (production shape) ---
    engine = PredictionEngine(model, mkg.split, model_name="TransE",
                              cache_size=CACHE_SIZE)
    batcher = MicroBatcher(engine, max_batch=32, max_delay=0.002)
    server = make_server(engine, batcher)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        run_load(port, clients=CLIENTS, per_client=5, queries=queries)  # warm
        record["modes"]["threaded"] = run_load(
            port, clients=CLIENTS, per_client=REQUESTS_PER_CLIENT,
            queries=queries)
    finally:
        server.shutdown()
        server.server_close()
        batcher.close()
        thread.join(timeout=10)

    # --- pool at 1 and N workers, same model via zero-copy replicas ---
    for workers in POOL_SIZES:
        config = PoolConfig(workers=workers, cache_size=CACHE_SIZE)
        pool = PoolServer(model, mkg.split, config, model_name="TransE")
        port = pool.start_background()
        try:
            run_load(port, clients=CLIENTS, per_client=5, queries=queries)
            record["modes"][f"pool-{workers}"] = run_load(
                port, clients=CLIENTS, per_client=REQUESTS_PER_CLIENT,
                queries=queries)
        finally:
            pool.request_shutdown(drain=True)
            pool.join(timeout=20)

    top = f"pool-{POOL_SIZES[-1]}"
    record["pool_speedup"] = round(
        record["modes"][top]["qps"] / record["modes"]["threaded"]["qps"], 3)
    record["speedup_asserted"] = cores >= 4

    # --- past saturation: tiny queue, deterministic service time ---
    config = PoolConfig(workers=2, max_queue_depth=SATURATION_DEPTH,
                        request_delay=SATURATION_DELAY,
                        shed_retry_after=SATURATION_DELAY * SATURATION_DEPTH)
    pool = PoolServer(model, mkg.split, config, model_name="TransE")
    port = pool.start_background()
    try:
        saturation = run_load(port, clients=CLIENTS,
                              per_client=SATURATION_REQUESTS, queries=queries)
    finally:
        pool.request_shutdown(drain=True)
        pool.join(timeout=20)
    record["saturation"] = saturation
    record["saturation"]["service_time_ms"] = 1e3 * SATURATION_DELAY
    record["saturation"]["max_queue_depth"] = SATURATION_DEPTH

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_serve.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\n[serve] cores={cores} "
          f"threaded={record['modes']['threaded']['qps']} q/s "
          f"{top}={record['modes'][top]['qps']} q/s "
          f"speedup={record['pool_speedup']}x [written to {path}]")

    # Graceful-degradation shape holds on any host: only 200s and shed
    # 429s (every one carrying Retry-After), and admitted p99 bounded by
    # what the queue can hold — not by the offered load.
    assert set(saturation["codes"]) <= {"200", "429"}, saturation
    assert saturation["codes"].get("429", 0) > 0, saturation
    assert saturation["retry_after_on_all_429s"], saturation
    bound_ms = 1e3 * SATURATION_DELAY * (SATURATION_DEPTH + 2) + 500.0
    assert saturation["admitted_p99_ms"] < bound_ms, saturation

    if record["speedup_asserted"]:
        assert record["pool_speedup"] >= MIN_POOL_SPEEDUP, record
