"""Fig. 1 benchmark: the diamond experiment."""

import numpy as np

from repro.experiments import get_prepared, mine_diamonds, render_fig1, run_fig1

from conftest import publish


def test_fig1_diamond_experiment(benchmark, bench_scale, capsys):
    result = run_fig1(bench_scale)
    publish("fig1_diamond", render_fig1(result), capsys)

    # Balanced sample is 50/50 by construction.
    assert result.baseline_same_rate == 50.0
    # Paper shape: similarity filtering lifts the Same-rate well above
    # chance (paper: 50% -> 67%).
    assert result.filtered_same_rate > 55.0, (
        "molecular similarity should carry relation-agreement signal")

    mkg, _ = get_prepared("drkg-mm", bench_scale)
    benchmark(lambda: mine_diamonds(mkg, max_diamonds=2000,
                                    rng=np.random.default_rng(0)))
