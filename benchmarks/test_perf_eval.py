"""Evaluation microbenchmark: vectorized evaluator vs per-row reference.

Times the two filtered-ranking paths on a synthetic 2k-entity split —
the seed per-row implementation (dict filter rebuilt per call, Python
loop per query) against :class:`repro.eval.RankingEvaluator` (CSR
filter built once, batched ranking) — and records queries/sec plus
filter-build time into ``benchmarks/results/BENCH_eval.json`` so the
perf trajectory is tracked from PR 1 onward.

Set ``BENCH_EVAL_QUICK=1`` (CI) to shrink the workload; the recorded
speedup threshold still has to hold.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.eval import RankingEvaluator, build_csr_filter, build_filter
from repro.eval.evaluator import CSRFilter
from repro.eval.ranking import compute_ranks_reference
from repro.kg import KGSplit, KnowledgeGraph, Vocabulary

from conftest import RESULTS_DIR

QUICK = bool(os.environ.get("BENCH_EVAL_QUICK"))

NUM_ENTITIES = 2_000
NUM_RELATIONS = 12
# DRKG-like density: the real graph has ~60 triples per entity
# (5.87M edges / 97k entities); 30 per entity keeps the benchmark fast
# while staying representative of the per-entity filter load.
N_TRAIN, N_VALID, N_TEST = 48_000, 6_000, 6_000
N_QUERIES = 250 if QUICK else 1_000        # triples ranked (x2 directions)
MIN_SPEEDUP = 10.0


def synthetic_split(seed: int = 0) -> KGSplit:
    rng = np.random.default_rng(seed)
    total = N_TRAIN + N_VALID + N_TEST
    triples = np.stack([
        rng.integers(0, NUM_ENTITIES, total),
        rng.integers(0, NUM_RELATIONS, total),
        rng.integers(0, NUM_ENTITIES, total),
    ], axis=1)
    g = KnowledgeGraph(
        entities=Vocabulary([f"e{i}" for i in range(NUM_ENTITIES)]),
        relations=Vocabulary([f"r{i}" for i in range(NUM_RELATIONS)]),
        triples=triples,
        entity_types=["Compound"] * NUM_ENTITIES,
    )
    return KGSplit(graph=g, train=triples[:N_TRAIN],
                   valid=triples[N_TRAIN:N_TRAIN + N_VALID],
                   test=triples[N_TRAIN + N_VALID:])


class RankOneScorer:
    """Deterministic dense scorer with memoized score blocks.

    Scores are a rank-2 function of the query, and every batch a path
    requests is computed once and cached — after the warm-up pass both
    timed paths pay only a dict lookup per ``predict_tails`` call, so
    the benchmark measures the *ranking* machinery, not the model.
    """

    def __init__(self, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.u = rng.normal(size=NUM_ENTITIES)
        self.w = rng.normal(size=NUM_ENTITIES)
        self.v = rng.normal(size=2 * NUM_RELATIONS)
        self.z = rng.normal(size=NUM_ENTITIES)
        self._blocks: dict[bytes, np.ndarray] = {}

    def predict_tails(self, heads, rels):
        key = np.asarray(heads).tobytes() + np.asarray(rels).tobytes()
        block = self._blocks.get(key)
        if block is None:
            block = self.u[heads][:, None] * self.w[None, :] \
                + self.v[rels][:, None] * self.z[None, :]
            self._blocks[key] = block
        return block


def test_perf_eval(capsys):
    split = synthetic_split()
    scorer = RankOneScorer()
    queries = split.test[:N_QUERIES]

    # Warm-up: run both paths once untimed so the scorer's block cache
    # is hot for both and one-off numpy/import costs are off the clock.
    compute_ranks_reference(scorer, split, queries)
    RankingEvaluator(split).compute_ranks(scorer, queries)

    # Filter construction: per-triple dict loop vs vectorized CSR pass.
    tick = time.perf_counter()
    dict_filter = build_filter(split)
    dict_build_s = time.perf_counter() - tick
    tick = time.perf_counter()
    csr: CSRFilter = build_csr_filter(split)
    csr_build_s = time.perf_counter() - tick
    assert csr.nnz == sum(len(v) for v in dict_filter.values())

    # End-to-end ranking, old path (rebuilds its dict filter internally,
    # exactly as the seed evaluate_ranking did on every call).
    tick = time.perf_counter()
    ref_ranks = compute_ranks_reference(scorer, split, queries)
    ref_seconds = time.perf_counter() - tick

    # New path: construct-once evaluator, batched ranking.
    tick = time.perf_counter()
    evaluator = RankingEvaluator(split)
    new_ranks = evaluator.compute_ranks(scorer, queries)
    new_seconds = time.perf_counter() - tick

    # The speedup must not come at the cost of correctness.
    np.testing.assert_allclose(new_ranks, ref_ranks, rtol=0, atol=1e-12)

    n_ranked = len(ref_ranks)  # both directions
    ref_qps = n_ranked / ref_seconds
    new_qps = n_ranked / new_seconds
    speedup = new_qps / ref_qps

    record = {
        "workload": {
            "num_entities": NUM_ENTITIES,
            "num_relations": NUM_RELATIONS,
            "num_filter_triples": N_TRAIN + N_VALID + N_TEST,
            "num_ranked_queries": n_ranked,
            "quick_mode": QUICK,
        },
        "reference_per_row": {
            "filter_build_seconds": round(dict_build_s, 6),
            "total_seconds": round(ref_seconds, 6),
            "queries_per_second": round(ref_qps, 1),
        },
        "vectorized_evaluator": {
            "filter_build_seconds": round(csr_build_s, 6),
            "total_seconds": round(new_seconds, 6),
            "queries_per_second": round(new_qps, 1),
        },
        "speedup_queries_per_second": round(speedup, 1),
        "filter_build_speedup": round(dict_build_s / max(csr_build_s, 1e-9), 1),
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_eval.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    with capsys.disabled():
        print(f"\n[eval perf] reference {ref_qps:,.0f} q/s | vectorized "
              f"{new_qps:,.0f} q/s | speedup {speedup:.1f}x "
              f"| filter build {dict_build_s * 1e3:.1f}ms -> "
              f"{csr_build_s * 1e3:.1f}ms\n[written to {path}]")

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized evaluator only {speedup:.1f}x faster (< {MIN_SPEEDUP}x)")
