"""Fig. 7 benchmark: case study of top-ranked tail semantics."""

import numpy as np

from repro.experiments import render_fig7, run_fig7, train_model

from conftest import publish


def test_fig7_case_study(benchmark, bench_scale, capsys):
    case = run_fig7(bench_scale)
    publish("fig7_case_study", render_fig7(case), capsys)

    assert len(case.predictions) == 3
    # Paper shape: predictions share class semantics far above chance.
    assert case.scaffold_match_rate > case.chance_match_rate, (
        "top-ranked tails should share the head's drug class more often "
        "than random compounds would")

    run = train_model("CamE", "drkg-mm", bench_scale)
    benchmark(lambda: run.model.predict_tails(np.array([0]), np.array([0])))
