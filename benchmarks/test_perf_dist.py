"""Data-parallel benchmark: epoch and sharded-eval throughput vs workers.

Times one 1-to-N training epoch and one full filtered-ranking pass at
``world_size`` 1 and 4 on the smoke-scale DRKG-MM graph, recording
throughputs and speedups into ``benchmarks/results/BENCH_dist.json``.

The ISSUE acceptance bars — >= 1.6x epoch throughput and >= 2x eval
throughput at 4 workers — are asserted only on machines with at least
4 usable cores; single-core CI boxes still produce the record (where
multiprocessing overhead legitimately makes speedup < 1), so the JSON
always documents what the hardware could show.

Set ``BENCH_DIST_QUICK=1`` (CI) for a single timing round at reduced
dimension.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.baselines import DistMult
from repro.datasets import DRKGConfig, generate_drkg_mm
from repro.dist import DistributedEngine, ShardedEvaluator
from repro.eval import RankingEvaluator
from repro.train import OneToNObjective

from conftest import RESULTS_DIR

QUICK = bool(os.environ.get("BENCH_DIST_QUICK"))
ROUNDS = 1 if QUICK else 2
DIM = 16 if QUICK else 32
WORLDS = (1, 4)
MIN_EPOCH_SPEEDUP = 1.6
MIN_EVAL_SPEEDUP = 2.0


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def make_engine(mkg, world_size: int) -> DistributedEngine:
    rng = np.random.default_rng(0)
    model = DistMult(mkg.num_entities, mkg.num_relations, DIM, rng=rng)
    return DistributedEngine(model, mkg.split, rng,
                             OneToNObjective(batch_size=128),
                             lr=0.003, world_size=world_size)


def best_of(fn, rounds: int) -> float:
    fn()  # warm-up: pool fork / allocator setup
    best = float("inf")
    for _ in range(rounds):
        tick = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tick)
    return best


def test_dist_epoch_and_eval_throughput():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.3))
    num_triples = 2 * len(mkg.split.train)
    num_eval_queries = 2 * len(mkg.split.test)
    cores = usable_cores()
    record = {"quick": QUICK, "dim": DIM, "cores": cores,
              "num_triples": num_triples,
              "num_eval_queries": num_eval_queries,
              "train": {}, "eval": {}}

    for world in WORLDS:
        engine = make_engine(mkg, world)
        try:
            seconds = best_of(engine.train_epoch, ROUNDS)
        finally:
            engine.shutdown()
        record["train"][str(world)] = {
            "epoch_seconds": seconds,
            "triples_per_sec": num_triples / seconds,
        }

        model = engine.model
        if world == 1:
            evaluator = RankingEvaluator(mkg.split)
        else:
            evaluator = ShardedEvaluator(mkg.split, num_workers=world)
        seconds = best_of(
            lambda: evaluator.evaluate(model, part="test", max_queries=None),
            ROUNDS)
        record["eval"][str(world)] = {
            "eval_seconds": seconds,
            "queries_per_sec": num_eval_queries / seconds,
        }

    lo, hi = str(WORLDS[0]), str(WORLDS[-1])
    record["epoch_speedup"] = (record["train"][hi]["triples_per_sec"]
                               / record["train"][lo]["triples_per_sec"])
    record["eval_speedup"] = (record["eval"][hi]["queries_per_sec"]
                              / record["eval"][lo]["queries_per_sec"])
    record["speedup_asserted"] = cores >= 4

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_dist.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\n[dist] cores={cores} "
          f"epoch_speedup={record['epoch_speedup']:.2f}x "
          f"eval_speedup={record['eval_speedup']:.2f}x "
          f"({lo} -> {hi} workers) [written to {path}]")

    if record["speedup_asserted"]:
        assert record["epoch_speedup"] >= MIN_EPOCH_SPEEDUP, record
        assert record["eval_speedup"] >= MIN_EVAL_SPEEDUP, record
