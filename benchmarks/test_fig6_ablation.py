"""Fig. 6 benchmark: ablation study of CamE's components."""

import numpy as np

from repro.core import CamE, CamEConfig
from repro.experiments import get_prepared, render_fig6, run_fig6

from conftest import publish


def test_fig6_ablations(benchmark, ablation_scale, capsys):
    results = run_fig6(ablation_scale)
    publish("fig6_ablation", render_fig6(results), capsys)

    full = results["full"].mrr
    # Paper shape: removing both modules is clearly worse than full CamE
    # (small tolerance for single-seed noise on the ~180-triple test set).
    assert results["w/o M and R"].mrr <= full * 1.05, (
        "removing MMF+RIC should hurt")
    # Every single ablation should not beat full by a wide margin.
    for name, metrics in results.items():
        assert metrics.mrr <= full * 1.15, f"{name} unexpectedly beats full CamE"

    # Benchmark: one full CamE forward pass (the ablated component cost).
    mkg, feats = get_prepared("drkg-mm", ablation_scale)
    model = CamE(mkg.num_entities, mkg.num_relations, feats,
                 CamEConfig(entity_dim=ablation_scale.model_dim,
                            relation_dim=ablation_scale.model_dim),
                 rng=np.random.default_rng(0))
    heads, rels = np.arange(32), np.zeros(32, dtype=np.int64)
    benchmark(lambda: model.score_queries(heads, rels))
