"""Observability overhead benchmark: instrumentation must be ~free when off.

``repro.obs`` instruments the hot paths (training epochs, evaluator
batches, serve request handling) with unconditional :func:`repro.obs.trace`
calls.  The disabled fast path returns a shared no-op context manager,
so the cost per span site is one function call plus one attribute check.
This benchmark pins that contract:

* measures the per-call cost of a disabled ``trace()`` site directly
  (tight microbenchmark, no timer noise from the workload itself) —
  including the request-context plumbing the serve path now runs per
  span (``current_span().set_attr(...)`` and ``current_traceparent()``,
  both no-ops against the shared noop span while disabled);
* asserts the disabled fast path allocates nothing: ``trace()`` returns
  the one shared ``_NOOP`` instance and ``current_span()`` returns the
  same object when no span is open;
* counts how many span sites one training epoch and one ``/predict``
  request actually execute (tracing enabled, in-memory ring);
* asserts ``per_call_cost * sites / workload_seconds < 5 %`` for both —
  a deterministic bound on the disabled-instrumentation overhead that
  does not depend on flaky A/B wall-clock comparisons;
* also records the raw enabled-vs-disabled epoch and request timings
  and their delta (informational; enabled tracing pays for contextvar
  set/reset, dict building + JSON-safe coercion, which the off path
  never runs).

Results land in ``benchmarks/results/BENCH_obs.json``.  Set
``BENCH_OBS_QUICK=1`` (CI) for a single timing round.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.baselines import DistMult, build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.obs import current_span, current_traceparent, get_tracer, trace, tracing
from repro.obs.trace import _NOOP
from repro.serve import PredictionEngine
from repro.serve.http import ServiceApp
from repro.train import OneToNObjective, TrainingEngine

from conftest import RESULTS_DIR

QUICK = bool(os.environ.get("BENCH_OBS_QUICK"))
ROUNDS = 1 if QUICK else 3
NOOP_CALLS = 50_000 if QUICK else 200_000

MAX_DISABLED_OVERHEAD = 0.05


def noop_trace_cost(calls: int) -> float:
    """Seconds per disabled ``trace()`` span site (enter + exit included).

    The loop body mirrors an instrumented serve span: open the span,
    read the current span and attach a request-scoped attribute, ask for
    the outgoing traceparent — so the bound covers the contextvars
    plumbing, not just the bare context manager.
    """
    assert not get_tracer().enabled
    for _ in range(1000):  # warm-up
        with trace("bench.noop", size=1):
            current_span().set_attr("cache_hits", 1)
            current_traceparent()
    tick = time.perf_counter()
    for _ in range(calls):
        with trace("bench.noop", size=1):
            current_span().set_attr("cache_hits", 1)
            current_traceparent()
    return (time.perf_counter() - tick) / calls


def make_train_engine():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.2))
    rng = np.random.default_rng(0)
    model = DistMult(mkg.num_entities, mkg.num_relations, 16, rng=rng)
    return TrainingEngine(model, mkg.split, rng,
                          OneToNObjective(batch_size=128), lr=0.003)


def make_service():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.12))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6, d_s=6,
                           gin_epochs=1, compgcn_epochs=1)
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(1), dim=16)
    engine = PredictionEngine(model, mkg.split, model_name="TransE",
                              cache_size=0)  # no cache: every request scores
    return ServiceApp(engine)


def best_of(fn, rounds: int) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(rounds):
        tick = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tick)
    return best


def count_spans(fn) -> int:
    with tracing() as tracer:
        fn()
        return len(tracer.spans)


def test_disabled_instrumentation_overhead(benchmark):
    assert not get_tracer().enabled
    # Zero-allocation contract: while disabled, every trace() site hands
    # back the one shared noop span, and so does current_span() when no
    # span is open; there is no outgoing context to format.
    assert trace("bench.a", size=1) is _NOOP
    assert trace("bench.b") is _NOOP
    assert current_span() is _NOOP
    assert current_traceparent() is None
    per_call = noop_trace_cost(NOOP_CALLS)

    # -- training epoch ------------------------------------------------
    engine = make_train_engine()
    epoch_seconds = best_of(engine.train_epoch, ROUNDS)
    spans_per_epoch = count_spans(engine.train_epoch)
    epoch_enabled_seconds = best_of(
        lambda: count_spans(engine.train_epoch), 1)
    epoch_overhead = per_call * spans_per_epoch / epoch_seconds

    # -- serve request -------------------------------------------------
    app = make_service()
    body = {"head": 0, "relation": 0, "k": 5}

    def one_request():
        status, _ = app.handle("POST", "/predict", body)
        assert status == 200

    request_seconds = best_of(one_request, ROUNDS)
    spans_per_request = count_spans(one_request)
    request_enabled_seconds = best_of(
        lambda: count_spans(one_request), 1)
    request_overhead = per_call * spans_per_request / request_seconds

    record = {
        "quick": QUICK,
        "noop_trace_call_seconds": per_call,
        "train_epoch": {
            "seconds_disabled": epoch_seconds,
            "seconds_enabled": epoch_enabled_seconds,
            "enabled_delta_fraction":
                epoch_enabled_seconds / epoch_seconds - 1.0,
            "span_sites": spans_per_epoch,
            "disabled_overhead_fraction": epoch_overhead,
        },
        "serve_request": {
            "seconds_disabled": request_seconds,
            "seconds_enabled": request_enabled_seconds,
            "enabled_delta_fraction":
                request_enabled_seconds / request_seconds - 1.0,
            "span_sites": spans_per_request,
            "disabled_overhead_fraction": request_overhead,
        },
        "max_allowed_overhead": MAX_DISABLED_OVERHEAD,
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_obs.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"noop trace call: {1e9 * per_call:.0f} ns; "
          f"epoch {spans_per_epoch} sites -> {100 * epoch_overhead:.3f}% "
          f"of {epoch_seconds:.3f}s; "
          f"request {spans_per_request} sites -> "
          f"{100 * request_overhead:.3f}% of {1e3 * request_seconds:.2f}ms")

    # an instrumented epoch executes a handful of spans per batch; the
    # disabled fast path must keep their total under 5% of the epoch
    assert spans_per_epoch > 0 and spans_per_request > 0
    assert epoch_overhead < MAX_DISABLED_OVERHEAD
    assert request_overhead < MAX_DISABLED_OVERHEAD

    # pytest-benchmark timing for the disabled span site itself
    benchmark(lambda: trace("bench.noop", size=1).__enter__())
