"""Fig. 5 benchmark: hyperparameter sweeps (#heads, theta, lambda)."""

import numpy as np

from repro.core import TCAOperator
from repro.experiments import render_fig5, run_fig5
from repro.nn import Tensor

from conftest import publish

SWEEPS = {
    "heads": (1, 2, 3),
    "theta": (-2.0, -0.5, 0.5),
    "interval": (1.0, 5.0, 10.0),
}


def test_fig5_parameter_sweeps(benchmark, sweep_scale, capsys):
    results = run_fig5(sweep_scale, sweeps=SWEEPS)
    publish("fig5_parameters", render_fig5(results), capsys)

    # Paper shape: multi-head helps over single head on DRKG-MM.
    heads = dict(results["heads"])
    assert max(heads[2], heads[3]) >= heads[1] * 0.9, (
        "multi-head TCA should not be clearly worse than single-head")

    # Benchmark the TCA operator itself (the swept component).
    op = TCAOperator(32, num_heads=2, rng=np.random.default_rng(0))
    q = Tensor(np.random.default_rng(1).normal(size=(64, 32)))
    d = Tensor(np.random.default_rng(2).normal(size=(64, 32)))
    benchmark(lambda: op(q, d))
