"""Streaming benchmark: append latency, inductive-embed throughput, parity.

Times the three costs the ``repro.stream`` tier adds to a live engine on
the smoke-scale DRKG-MM graph, recording them into
``benchmarks/results/BENCH_stream.json``:

* **append latency** — p50/p99 over a run of sequential single-entity
  ``apply_append`` calls against a live :class:`PredictionEngine`
  (parse -> plan -> inductive embed -> commit under the engine lock,
  cache invalidation, filter fold);
* **inductive-embed throughput** — entities/sec through
  :func:`plan_append` for a batch of unseen compounds with text +
  molecule modalities (plan mutates nothing, so one encoder amortises
  across the whole batch);
* **post-append query overhead** — exact top-k latency for a
  pre-existing query before vs after the appends, plus a bit-identity
  check that the appends never perturbed pre-existing scores.

The overhead ratio is asserted loosely (< 2x) because on a 1-core CI
box the timings are dominated by scheduler noise at this scale; the
parity check is exact everywhere.  Set ``BENCH_STREAM_QUICK=1`` (CI)
for a shorter run.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.baselines import build_model
from repro.datasets import DRKGConfig, build_features, generate_drkg_mm
from repro.serve import PredictionEngine
from repro.stream import EntitySpec, apply_append, default_encoder, plan_append

from conftest import RESULTS_DIR

QUICK = bool(os.environ.get("BENCH_STREAM_QUICK"))
NUM_APPENDS = 8 if QUICK else 64
EMBED_BATCH = 32 if QUICK else 256
QUERY_ROUNDS = 50 if QUICK else 300
MAX_OVERHEAD = 2.0


def _specs(feats, count: int, prefix: str) -> list[EntitySpec]:
    d_m = feats.molecular.shape[1]
    return [EntitySpec(name=f"{prefix}::{i}", entity_type="Compound",
                       description=f"streamed benchmark compound {i}",
                       molecule=np.linspace(0.0, 1.0, d_m) * (i + 1))
            for i in range(count)]


def _quantiles(seconds: list[float]) -> dict:
    arr = np.asarray(seconds)
    return {"p50_ms": float(np.percentile(arr, 50) * 1e3),
            "p99_ms": float(np.percentile(arr, 99) * 1e3),
            "mean_ms": float(arr.mean() * 1e3)}


def _time_query(engine, head: int, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        tick = time.perf_counter()
        engine.top_k_tails(head, 0, 10)
        best = min(best, time.perf_counter() - tick)
    return best


def test_stream_append_and_embed_throughput():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.3))
    feats = build_features(mkg, np.random.default_rng(0), d_m=6, d_t=6,
                           d_s=6, gin_epochs=1, compgcn_epochs=1)
    model, _ = build_model("TransE", mkg, feats, np.random.default_rng(1),
                           dim=32)
    engine = PredictionEngine(model, mkg.split, model_name="TransE")
    old_n = engine.num_entities
    record = {"quick": QUICK, "num_entities": old_n,
              "num_appends": NUM_APPENDS, "embed_batch": EMBED_BATCH}

    probe_head = 3
    baseline_scores = engine.scores(np.array([probe_head]), np.array([0]))
    before_seconds = _time_query(engine, probe_head, QUERY_ROUNDS)

    # Sequential single-entity appends: the serving-path hot loop.
    tail = mkg.split.graph.entities.name(3)
    timings = []
    for i in range(NUM_APPENDS):
        spec = _specs(feats, 1, f"BENCH::{i}")[0]
        body = {"entities": [{"name": spec.name, "type": spec.entity_type,
                              "description": spec.description,
                              "molecule": spec.molecule.tolist()}],
                "triples": [[spec.name, 0, tail]]}
        tick = time.perf_counter()
        delta = apply_append(engine, body, source="bench")
        timings.append(time.perf_counter() - tick)
        assert delta.generation == i + 1
    record["append_latency"] = _quantiles(timings)
    record["appends_per_sec"] = NUM_APPENDS / sum(timings)

    # Batched inductive embedding through plan_append (no commit).
    encoder = default_encoder(engine.model, engine.split)
    specs = _specs(feats, EMBED_BATCH, "EMBED")
    raw = [[s.name, 0, tail] for s in specs]
    plan_append(engine.model, engine.split, specs, raw, encoder=encoder)
    tick = time.perf_counter()
    plan = plan_append(engine.model, engine.split, specs, raw,
                       encoder=encoder)
    embed_seconds = time.perf_counter() - tick
    assert plan.rows.entity.shape == (EMBED_BATCH, 32)
    record["embed"] = {"seconds": embed_seconds,
                       "entities_per_sec": EMBED_BATCH / embed_seconds}

    # Post-append parity: pre-existing scores bit-identical, exact-path
    # latency within budget of the pre-append baseline.
    after_scores = engine.scores(np.array([probe_head]), np.array([0]))
    np.testing.assert_array_equal(after_scores[:, :old_n], baseline_scores)
    assert engine.num_entities == old_n + NUM_APPENDS
    after_seconds = _time_query(engine, probe_head, QUERY_ROUNDS)
    record["query"] = {
        "before_ms": before_seconds * 1e3,
        "after_ms": after_seconds * 1e3,
        "overhead_ratio": after_seconds / before_seconds,
        "entities_added_pct": 100.0 * NUM_APPENDS / old_n,
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_stream.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\n[stream] append p50={record['append_latency']['p50_ms']:.2f}ms "
          f"p99={record['append_latency']['p99_ms']:.2f}ms "
          f"embed={record['embed']['entities_per_sec']:.0f} ent/s "
          f"query_overhead={record['query']['overhead_ratio']:.2f}x "
          f"[written to {path}]")

    assert record["query"]["overhead_ratio"] < MAX_OVERHEAD, record
