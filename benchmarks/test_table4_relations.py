"""Tables IV & V benchmark: per-relation-family evaluation."""

import numpy as np

from repro.eval import evaluate_per_relation_family
from repro.experiments import (
    render_table4,
    render_table5,
    run_table4,
    run_table5,
    train_model,
    get_prepared,
)

from conftest import publish


def test_table5_family_counts(benchmark, bench_scale, capsys):
    counts = run_table5(bench_scale)
    publish("table5_family_counts", render_table5(counts), capsys)
    # Paper shape: Gene-Gene and Compound-Compound dominate.
    ordered = sorted(counts, key=counts.get, reverse=True)
    assert set(ordered[:2]) == {"Gene-Gene", "Compound-Compound"}
    benchmark(lambda: run_table5(bench_scale))


def test_table4_per_relation(benchmark, bench_scale, capsys):
    results = run_table4(bench_scale)
    publish("table4_per_relation", render_table4(results), capsys)

    # Paper shape: CamE leads Compound-Compound (molecule signal).
    cc = "Compound-Compound"
    came_cc = results["CamE"][cc].mrr
    best_other = max(results[m][cc].mrr for m in results if m != "CamE")
    assert came_cc >= best_other * 0.85, (
        "CamE should be at/near the top on Compound-Compound relations")

    mkg, _ = get_prepared("drkg-mm", bench_scale)
    run = train_model("CamE", "drkg-mm", bench_scale)
    benchmark.pedantic(
        lambda: evaluate_per_relation_family(run.model, mkg.split,
                                             max_queries_per_family=20),
        rounds=2, iterations=1,
    )
