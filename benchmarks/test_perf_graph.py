"""GraphData substrate microbenchmark: batched GIN + CSR KG queries.

Times the molecule-encoding pipeline before and after the
:mod:`repro.graph` refactor — the former per-molecule Python-loop
featurization + batching (reimplemented inline as the reference)
against :func:`repro.mol.batch_graph` over cached per-molecule
``GraphData`` views — plus the CSR-backed ``KnowledgeGraph`` queries
against their former per-triple dict loops.  Records molecules/sec and
query-build speedups into ``benchmarks/results/BENCH_graph.json``.

The GIN numbers are *steady-state* (warm molecule caches): that is the
pre-training workload, which re-batches random subsets of a fixed pool
every epoch.  Cold first-touch cost is recorded separately.

Set ``BENCH_GRAPH_QUICK=1`` (CI) to shrink the workload; the recorded
speedup threshold still has to hold.
"""

from __future__ import annotations

import json
import os
import time
from collections import defaultdict

import numpy as np

from repro import nn
from repro.gnn import CompGCNEncoder, as_relational_graph
from repro.graph import GraphData
from repro.kg import KnowledgeGraph, Vocabulary
from repro.mol import ELEMENTS, MoleculeGenerator
from repro.mol.gin import NODE_FEATURE_DIM, GINEncoder, batch_graph

from conftest import RESULTS_DIR

QUICK = bool(os.environ.get("BENCH_GRAPH_QUICK"))

NUM_MOLECULES = 96 if QUICK else 256
BATCH_SIZE = 64
ENCODE_ROUNDS = 3 if QUICK else 10
MIN_GIN_SPEEDUP = 3.0

KG_ENTITIES = 1_000 if QUICK else 2_000
KG_RELATIONS = 12
KG_TRIPLES = 20_000 if QUICK else 60_000


def reference_batch(molecules):
    """The former per-molecule Python-loop featurization + batching."""
    xs, edges, graph_ids = [], [], []
    offset = 0
    for idx, mol in enumerate(molecules):
        x = np.zeros((mol.num_atoms, NODE_FEATURE_DIM))
        degrees = np.zeros(mol.num_atoms, dtype=np.int64)
        for bond in mol.bonds:
            degrees[bond.i] += 1
            degrees[bond.j] += 1
        for a, atom in enumerate(mol.atoms):
            x[a, atom.element_id] = 1.0
            x[a, len(ELEMENTS) + min(int(degrees[a]), 6)] = 1.0
        src = [b.i for b in mol.bonds] + [b.j for b in mol.bonds]
        dst = [b.j for b in mol.bonds] + [b.i for b in mol.bonds]
        xs.append(x)
        edges.append(np.array([src, dst], dtype=np.int64) + offset)
        graph_ids.extend([idx] * mol.num_atoms)
        offset += mol.num_atoms
    return (np.concatenate(xs), np.concatenate(edges, axis=1),
            np.asarray(graph_ids, dtype=np.int64))


def encode_reference(encoder, molecules):
    x, edge_index, graph_ids = reference_batch(molecules)
    graph = GraphData(num_nodes=len(x), src=edge_index[0], dst=edge_index[1],
                      node_feat={"x": x}, graph_ids=graph_ids,
                      num_graphs=len(molecules))
    return encoder.encode(graph)


def epoch_batches(molecules, rng):
    order = rng.permutation(len(molecules))
    return [[molecules[i] for i in order[s:s + BATCH_SIZE]]
            for s in range(0, len(order), BATCH_SIZE)]


def synthetic_kg(seed=0):
    rng = np.random.default_rng(seed)
    triples = np.stack([
        rng.integers(0, KG_ENTITIES, KG_TRIPLES),
        rng.integers(0, KG_RELATIONS, KG_TRIPLES),
        rng.integers(0, KG_ENTITIES, KG_TRIPLES),
    ], axis=1)
    return KnowledgeGraph(
        entities=Vocabulary(f"e{i}" for i in range(KG_ENTITIES)),
        relations=Vocabulary(f"r{i}" for i in range(KG_RELATIONS)),
        triples=triples,
        entity_types=["Compound"] * KG_ENTITIES,
    )


def reference_adjacency(kg):
    adj = defaultdict(list)
    for h, r, t in kg.triples:
        adj[int(h)].append((int(r), int(t)))
    return dict(adj)


def reference_undirected(kg):
    nb = defaultdict(set)
    for h, _, t in kg.triples:
        nb[int(h)].add(int(t))
        nb[int(t)].add(int(h))
    return dict(nb)


def test_perf_graph(capsys):
    gen = MoleculeGenerator(np.random.default_rng(0))
    molecules = [gen.generate_random() for _ in range(NUM_MOLECULES)]
    encoder = GINEncoder(hidden_dim=16, num_layers=2,
                         rng=np.random.default_rng(0))

    # Cold featurization: first touch of every per-molecule cache.
    tick = time.perf_counter()
    batch_graph(molecules)
    cold_batch_s = time.perf_counter() - tick

    # Warm-up both paths (hot caches, hot numpy) and check parity.
    warm_ref = encode_reference(encoder, molecules[:BATCH_SIZE])
    warm_new = encoder.encode(molecules[:BATCH_SIZE])
    np.testing.assert_array_equal(warm_ref, warm_new)

    rng = np.random.default_rng(1)
    feat_s = batch_s = before_s = after_s = 0.0
    for _ in range(ENCODE_ROUNDS):
        batches = epoch_batches(molecules, rng)
        # Featurization + batching alone: the per-molecule Python loop
        # the seed ran on every batch vs the cached-GraphData union.
        tick = time.perf_counter()
        for batch in batches:
            reference_batch(batch)
        feat_s += time.perf_counter() - tick
        tick = time.perf_counter()
        for batch in batches:
            batch_graph(batch)
        batch_s += time.perf_counter() - tick
        # End-to-end encode (batching + GIN forward) for both paths.
        tick = time.perf_counter()
        for batch in batches:
            encode_reference(encoder, batch)
        before_s += time.perf_counter() - tick
        tick = time.perf_counter()
        for batch in batches:
            encoder.encode(batch)
        after_s += time.perf_counter() - tick
    encoded = NUM_MOLECULES * ENCODE_ROUNDS
    feat_mps = encoded / feat_s
    batch_mps = encoded / batch_s
    gin_speedup = batch_mps / feat_mps
    before_mps = encoded / before_s
    after_mps = encoded / after_s
    encode_speedup = after_mps / before_mps

    # CSR-backed KG queries vs the former per-triple dict loops.
    kg = synthetic_kg()
    tick = time.perf_counter()
    ref_adj = reference_adjacency(kg)
    ref_adj_s = time.perf_counter() - tick
    tick = time.perf_counter()
    csr_adj = kg.adjacency()
    csr_adj_s = time.perf_counter() - tick
    assert csr_adj == ref_adj
    tick = time.perf_counter()
    ref_und = reference_undirected(kg)
    ref_und_s = time.perf_counter() - tick
    tick = time.perf_counter()
    csr_und = kg.undirected_neighbors()
    csr_und_s = time.perf_counter() - tick
    assert csr_und == ref_und

    # CompGCN forward: raw triples (conversion per call) vs a GraphData
    # converted once — the shape every training loop now uses.
    edges = kg.triples[:4_000]
    enc = CompGCNEncoder(KG_ENTITIES, KG_RELATIONS, dim=16,
                         rng=np.random.default_rng(0))
    graph = as_relational_graph(edges, KG_ENTITIES)
    with nn.no_grad():
        enc(graph)  # warm-up
        rounds = 2 if QUICK else 5
        tick = time.perf_counter()
        for _ in range(rounds):
            enc(edges)
        raw_fwd_s = (time.perf_counter() - tick) / rounds
        tick = time.perf_counter()
        for _ in range(rounds):
            enc(graph)
        graph_fwd_s = (time.perf_counter() - tick) / rounds

    record = {
        "host": {
            "cpu_count": os.cpu_count(),
            "note": "single shared CPU host; absolute numbers are "
                    "indicative, ratios are the signal",
        },
        "workload": {
            "num_molecules": NUM_MOLECULES,
            "batch_size": BATCH_SIZE,
            "encode_rounds": ENCODE_ROUNDS,
            "kg_entities": KG_ENTITIES,
            "kg_triples": KG_TRIPLES,
            "quick_mode": QUICK,
        },
        "gin_batching": {
            "cold_first_batch_seconds": round(cold_batch_s, 6),
            "loop_molecules_per_second": round(feat_mps, 1),
            "graphdata_molecules_per_second": round(batch_mps, 1),
            "speedup": round(gin_speedup, 2),
            "note": "featurization + disjoint-union batching only; "
                    "steady-state (warm per-molecule caches) — the "
                    "pre-training workload shape",
        },
        "gin_end_to_end_encode": {
            "reference_molecules_per_second": round(before_mps, 1),
            "graphdata_molecules_per_second": round(after_mps, 1),
            "speedup": round(encode_speedup, 2),
            "note": "includes the (unchanged) GIN forward pass, which "
                    "bounds the achievable end-to-end gain",
        },
        "kg_queries": {
            "adjacency_loop_seconds": round(ref_adj_s, 6),
            "adjacency_csr_seconds": round(csr_adj_s, 6),
            "adjacency_speedup": round(ref_adj_s / max(csr_adj_s, 1e-9), 1),
            "undirected_loop_seconds": round(ref_und_s, 6),
            "undirected_csr_seconds": round(csr_und_s, 6),
            "undirected_speedup": round(ref_und_s / max(csr_und_s, 1e-9), 1),
        },
        "compgcn_forward": {
            "raw_triples_seconds": round(raw_fwd_s, 6),
            "graphdata_seconds": round(graph_fwd_s, 6),
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_graph.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    with capsys.disabled():
        print(f"\n[graph perf] GIN batching {feat_mps:,.0f} -> {batch_mps:,.0f} "
              f"molecules/s ({gin_speedup:.1f}x) | end-to-end encode "
              f"{encode_speedup:.1f}x | adjacency "
              f"{record['kg_queries']['adjacency_speedup']}x | undirected "
              f"{record['kg_queries']['undirected_speedup']}x\n"
              f"[written to {path}]")

    assert gin_speedup >= MIN_GIN_SPEEDUP, (
        f"GIN batching only {gin_speedup:.1f}x faster (< {MIN_GIN_SPEEDUP}x)")
