"""ANN serving benchmark: approximate vs exact top-k throughput + recall.

Builds a TransE whose entity table is a clustered point cloud (the
distribution trained embedding tables exhibit and the regime IVF is
designed for), attaches an int8 IVF index, and measures — for the exact
path and for at least three ``nprobe`` settings — queries/second and
recall@10 against the exact ranking.  Also records the quantized-table
memory footprint.  Everything lands in
``benchmarks/results/BENCH_ann.json``.

Acceptance bars asserted here:

* recall@10 >= 0.95 at the index's default ``nprobe``;
* recall@10 == 1.0 at ``nprobe == nlist`` (full probe + exact rerank);
* int8 stored table <= 30% of the float64 table bytes.

Set ``BENCH_ANN_QUICK=1`` (CI) for a smaller entity table and fewer
query repetitions.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.ann import default_nprobe
from repro.baselines import TransE
from repro.kg import KGSplit, KnowledgeGraph, Vocabulary
from repro.serve import AnnServing, PredictionEngine

from conftest import RESULTS_DIR

QUICK = bool(os.environ.get("BENCH_ANN_QUICK"))
NUM_ENTITIES = 2000 if QUICK else 8000
NUM_CLUSTERS = 32 if QUICK else 80
DIM = 16 if QUICK else 32
NUM_QUERIES = 64 if QUICK else 200
REPEATS = 1 if QUICK else 3
K = 10
MIN_DEFAULT_RECALL = 0.95
MAX_INT8_RATIO = 0.30


def make_engine() -> PredictionEngine:
    rng = np.random.default_rng(0)
    centers = rng.normal(size=(NUM_CLUSTERS, DIM))
    table = centers[rng.integers(0, NUM_CLUSTERS, NUM_ENTITIES)]
    table += 0.05 * rng.normal(size=table.shape)
    triples = np.stack([rng.integers(0, NUM_ENTITIES, 60),
                        rng.integers(0, 4, 60),
                        rng.integers(0, NUM_ENTITIES, 60)], axis=1)
    graph = KnowledgeGraph(
        entities=Vocabulary([f"e{i}" for i in range(NUM_ENTITIES)]),
        relations=Vocabulary([f"r{i}" for i in range(4)]),
        triples=triples, name="bench-ann")
    split = KGSplit(graph=graph, train=triples[:40], valid=triples[40:50],
                    test=triples[50:])
    model = TransE(NUM_ENTITIES, 4, dim=DIM, rng=np.random.default_rng(1))
    model.entity_embedding.weight.data[:] = table
    model.relation_embedding.weight.data[:] *= 0.02
    ann = AnnServing.build(model, store="int8", seed=0)
    # cache_size=0: every exact query pays the full row scan, which is
    # the honest baseline the ANN path is being compared against.
    return PredictionEngine(model, split, model_name="TransE", cache_size=0,
                            ann=ann)


def time_queries(fn, queries, repeats: int) -> float:
    """Best-of-N wall seconds to answer every query in ``queries``."""
    fn(*queries[0])  # warm-up
    best = float("inf")
    for _ in range(repeats):
        tick = time.perf_counter()
        for head, rel in queries:
            fn(head, rel)
        best = min(best, time.perf_counter() - tick)
    return best


def test_ann_throughput_and_recall():
    engine = make_engine()
    index = engine.ann.index
    rng = np.random.default_rng(2)
    queries = [(int(h), int(r)) for h, r in zip(
        rng.integers(0, NUM_ENTITIES, NUM_QUERIES),
        rng.integers(0, 4, NUM_QUERIES))]

    exact_ids = {q: engine.top_k_tails(*q, K, approx=False)[0]
                 for q in dict.fromkeys(queries)}
    exact_seconds = time_queries(
        lambda h, r: engine.top_k_tails(h, r, K, approx=False),
        queries, REPEATS)

    nprobes = sorted({1, default_nprobe(index.nlist), index.nlist})
    record = {
        "quick": QUICK,
        "num_entities": NUM_ENTITIES,
        "dim": DIM,
        "num_queries": NUM_QUERIES,
        "k": K,
        "nlist": index.nlist,
        "default_nprobe": index.default_nprobe,
        "memory": index.memory(),
        "exact": {"seconds": exact_seconds,
                  "queries_per_sec": NUM_QUERIES / exact_seconds},
        "approx": {},
    }

    for nprobe in nprobes:
        seconds = time_queries(
            lambda h, r: engine.top_k_tails(h, r, K, approx=True,
                                            nprobe=nprobe),
            queries, REPEATS)
        recalls = []
        for q in dict.fromkeys(queries):
            ids, _ = engine.top_k_tails(*q, K, approx=True, nprobe=nprobe)
            ref = exact_ids[q]
            recalls.append(len(set(ids) & set(ref)) / len(ref))
        record["approx"][str(nprobe)] = {
            "nprobe": nprobe,
            "seconds": seconds,
            "queries_per_sec": NUM_QUERIES / seconds,
            "speedup_vs_exact": exact_seconds / seconds,
            "recall_at_10": float(np.mean(recalls)),
        }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_ann.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    default_row = record["approx"][str(index.default_nprobe)]
    full_row = record["approx"][str(index.nlist)]
    print(f"\n[ann] E={NUM_ENTITIES} nlist={index.nlist} "
          f"exact={record['exact']['queries_per_sec']:.0f} q/s; "
          f"nprobe={index.default_nprobe}: "
          f"{default_row['queries_per_sec']:.0f} q/s "
          f"({default_row['speedup_vs_exact']:.1f}x, "
          f"recall@10={default_row['recall_at_10']:.3f}) "
          f"[written to {path}]")

    assert record["memory"]["table_ratio_vs_float64"] <= MAX_INT8_RATIO, record
    assert default_row["recall_at_10"] >= MIN_DEFAULT_RECALL, record
    assert full_row["recall_at_10"] == 1.0, record
