"""Table II benchmark: dataset statistics + generation cost."""

import numpy as np

from repro.datasets import DRKGConfig, generate_drkg_mm
from repro.experiments import render_table2, run_table2

from conftest import publish


def test_table2_dataset_statistics(benchmark, bench_scale, capsys):
    stats = run_table2(bench_scale)
    publish("table2_datasets", render_table2(stats), capsys)

    # Sanity: the 8:1:1 protocol of the paper holds.
    for row in stats.values():
        total = row["#Train"] + row["#Valid"] + row["#Test"]
        assert row["#Train"] / total >= 0.75

    # Benchmark: full DRKG-MM generation at a reduced size.
    cfg = DRKGConfig().scaled(0.2)
    benchmark(lambda: generate_drkg_mm(cfg))
