"""Reproduction-specific design ablations (beyond the paper's Fig. 6).

DESIGN.md calls out two reading/engineering choices this reproduction
made; each gets an ablation bench so the choice is measured, not
asserted:

* the gated ``W_1 h_s`` structural scoring term of Eqn. 15 (our reading
  applies a learnable transform + zero-initialised gate on the
  candidate side) versus dropping the term entirely;
* the hashed n-gram text encoder versus the trainable char-CNN.
"""

import numpy as np

from repro.core import CamE, CamEConfig, OneToNTrainer
from repro.datasets import build_features
from repro.eval import evaluate_ranking
from repro.experiments import get_prepared

from conftest import publish


def _train_eval(mkg, feats, cfg, epochs, seed=1):
    rng = np.random.default_rng(seed)
    model = CamE(mkg.num_entities, mkg.num_relations, feats, cfg, rng=rng)
    trainer = OneToNTrainer(model, mkg.split, rng, lr=cfg.learning_rate,
                            batch_size=128)
    trainer.fit(epochs, eval_every=max(epochs // 3, 1), eval_max_queries=100)
    return evaluate_ranking(model, mkg.split, part="test", max_queries=200,
                            rng=np.random.default_rng(2))


def test_struct_term_ablation(benchmark, sweep_scale, capsys):
    mkg, feats = get_prepared("drkg-mm", sweep_scale)
    base = CamEConfig(entity_dim=sweep_scale.model_dim,
                      relation_dim=sweep_scale.model_dim)
    with_term = _train_eval(mkg, feats, base, sweep_scale.epochs_came)
    without = _train_eval(mkg, feats, base.variant(use_struct_term=False),
                          sweep_scale.epochs_came)
    text = (
        "Design ablation: gated W1*h_s structural scoring term (Eqn. 15)\n"
        f"  with gated term    : MRR={with_term.mrr:.1f} H@10={with_term.hits[10]:.1f}\n"
        f"  without the term   : MRR={without.mrr:.1f} H@10={without.hits[10]:.1f}"
    )
    publish("design_struct_term", text, capsys)
    # The zero-initialised gate must make the term at worst harmless.
    assert with_term.mrr >= without.mrr * 0.85

    benchmark.pedantic(lambda: evaluate_ranking(
        _DummyScorer(mkg.num_entities), mkg.split, part="valid",
        max_queries=50, rng=np.random.default_rng(0)), rounds=2, iterations=1)


class _DummyScorer:
    """Constant scorer used to time the bare evaluation protocol."""

    def __init__(self, num_entities: int) -> None:
        self.num_entities = num_entities

    def predict_tails(self, heads, rels):
        return np.zeros((len(heads), self.num_entities))


def test_text_encoder_choice(benchmark, sweep_scale, capsys):
    mkg, _ = get_prepared("drkg-mm", sweep_scale)
    dims = dict(d_m=sweep_scale.feature_dim, d_t=sweep_scale.feature_dim,
                d_s=sweep_scale.feature_dim)
    ngram = build_features(mkg, np.random.default_rng(0), text_encoder="ngram",
                           gin_epochs=1, compgcn_epochs=2, **dims)
    charcnn = build_features(mkg, np.random.default_rng(0), text_encoder="charcnn",
                             gin_epochs=1, text_epochs=2, compgcn_epochs=2, **dims)
    cfg = CamEConfig(entity_dim=sweep_scale.model_dim,
                     relation_dim=sweep_scale.model_dim)
    epochs = max(sweep_scale.epochs_came // 2, 1)
    m_ngram = _train_eval(mkg, ngram, cfg, epochs)
    m_cnn = _train_eval(mkg, charcnn, cfg, epochs)
    text = (
        "Design ablation: text encoder (CharacterBERT stand-in)\n"
        f"  hashed n-grams : MRR={m_ngram.mrr:.1f} H@10={m_ngram.hits[10]:.1f}\n"
        f"  char-CNN (MLM) : MRR={m_cnn.mrr:.1f} H@10={m_cnn.hits[10]:.1f}"
    )
    publish("design_text_encoder", text, capsys)
    # Both encoders must produce usable features (sanity floor).
    assert m_ngram.mrr > 5.0 and m_cnn.mrr > 5.0

    from repro.text import NgramHashEncoder
    enc = NgramHashEncoder(dim=sweep_scale.feature_dim)
    texts = [mkg.entity_text(i) for i in range(min(64, mkg.num_entities))]
    benchmark(lambda: enc.encode(texts))
