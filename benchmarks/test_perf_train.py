"""Training microbenchmark: engine epoch throughput per objective.

Times one :class:`repro.train.TrainingEngine` epoch for each training
regime — DistMult under the 1-to-N BCE objective and TransE under the
negative-sampling log-sigmoid objective — on the smoke-scale DRKG-MM
graph, and records triples/sec into
``benchmarks/results/BENCH_train.json`` so the training-loop perf
trajectory is tracked from PR 3 onward (the refactor that introduced
the engine must not regress either loop).

Set ``BENCH_TRAIN_QUICK=1`` (CI) to time a single round per regime.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.baselines import DistMult, TransE
from repro.datasets import DRKGConfig, generate_drkg_mm
from repro.train import NegativeSamplingObjective, OneToNObjective, TrainingEngine

from conftest import RESULTS_DIR

QUICK = bool(os.environ.get("BENCH_TRAIN_QUICK"))
ROUNDS = 1 if QUICK else 3
DIM = 16 if QUICK else 32


def make_engines():
    mkg = generate_drkg_mm(DRKGConfig().scaled(0.3))
    rng = np.random.default_rng(0)
    one_ton = TrainingEngine(
        DistMult(mkg.num_entities, mkg.num_relations, DIM, rng=rng),
        mkg.split, rng, OneToNObjective(batch_size=128), lr=0.003)
    rng = np.random.default_rng(0)
    neg = TrainingEngine(
        TransE(mkg.num_entities, mkg.num_relations, DIM, rng=rng),
        mkg.split, rng,
        NegativeSamplingObjective(batch_size=256, num_negatives=4), lr=0.01)
    # Both objectives train on the inverse-augmented triple set.
    num_triples = 2 * len(mkg.split.train)
    return {"1toN": one_ton, "negative-sampling": neg}, num_triples


def time_epochs(engine, rounds: int) -> float:
    engine.train_epoch()  # warm-up: first epoch pays allocator setup
    best = float("inf")
    for _ in range(rounds):
        tick = time.perf_counter()
        engine.train_epoch()
        best = min(best, time.perf_counter() - tick)
    return best


def test_engine_epoch_throughput(benchmark):
    engines, num_triples = make_engines()
    record = {"quick": QUICK, "dim": DIM, "num_triples": num_triples,
              "objectives": {}}
    for name, engine in engines.items():
        seconds = time_epochs(engine, ROUNDS)
        record["objectives"][name] = {
            "epoch_seconds": seconds,
            "triples_per_sec": num_triples / seconds,
        }
        # Sanity: an epoch actually trained (finite loss recorded).
        assert np.isfinite(engine.train_epoch())

    # pytest-benchmark timing on the 1-to-N path (the CamE regime).
    benchmark(engines["1toN"].train_epoch)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_train.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    for name, row in record["objectives"].items():
        print(f"[{name}] epoch {row['epoch_seconds']:.3f}s "
              f"({row['triples_per_sec']:.0f} triples/s)")
