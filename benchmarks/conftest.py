"""Shared benchmark configuration.

Benchmarks double as the paper-reproduction harness: each module
regenerates one table/figure at the ``small`` CPU scale, writes the
rendered output to ``benchmarks/results/<name>.txt``, prints it to the
console (bypassing capture), and times a representative inner operation
with pytest-benchmark.

Model training is cached in-process (see ``repro.experiments.runner``),
so e.g. the CamE trained for Table III is reused by Table IV, Fig. 7
and Fig. 8(a) instead of retrained.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.experiments import SMALL

#: Scale used by the headline comparisons (Tables II-V, Figs 1/4/7/8a/9).
BENCH_SCALE = SMALL

#: Reduced budget for the many-retrain sweeps (Figs 5/8b and design
#: ablations): relative ordering stabilises well before full convergence.
SWEEP_SCALE = dataclasses.replace(SMALL, epochs_came=36, eval_every=12)

#: Fig. 6 needs the *full* CamE budget: the paper's own Fig. 8(b) shows
#: stripped variants (w/o TCA, w/o M and R) converge faster early but
#: plateau lower, so comparing ablations mid-training inverts the
#: ordering.  Sparser eval cadence keeps the cost bounded.
ABLATION_SCALE = dataclasses.replace(SMALL, eval_every=30)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def publish(name: str, text: str, capsys=None) -> None:
    """Write a rendered table/figure to disk and echo it to the console."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    if capsys is not None:
        with capsys.disabled():
            print(f"\n{text}\n[written to {path}]")
    else:  # pragma: no cover - fallback when capsys is unavailable
        print(text)


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def sweep_scale():
    return SWEEP_SCALE


@pytest.fixture(scope="session")
def ablation_scale():
    return ABLATION_SCALE
