"""Fig. 8 benchmark: convergence (test MRR vs wall-clock)."""

import numpy as np

from repro.experiments import render_fig8, run_fig8a, run_fig8b, train_model

from conftest import publish


def test_fig8_convergence(benchmark, bench_scale, sweep_scale, capsys):
    series_a = run_fig8a(bench_scale)
    series_b = run_fig8b(sweep_scale)
    publish("fig8_convergence", render_fig8(series_a, series_b), capsys)

    # Paper shape (a): cheap baselines reach their first eval point long
    # before CamE does (CamE pays per-epoch multimodal cost)...
    first_time = {name: pts[0][0] for name, pts in series_a.items() if pts}
    assert first_time["DistMult"] < first_time["CamE"]
    # ...but CamE ends at the best MRR.
    final_mrr = {name: pts[-1][1] for name, pts in series_a.items() if pts}
    assert final_mrr["CamE"] >= max(v for k, v in final_mrr.items() if k != "CamE") * 0.88

    # Paper shape (b): w/o TCA is faster to its first eval than full CamE.
    first_b = {name: pts[0][0] for name, pts in series_b.items() if pts}
    assert first_b["w/o TCA"] < first_b["full"]

    # Benchmark one training epoch of the full model.
    run = train_model("DistMult", "drkg-mm", bench_scale)
    heads, rels = np.arange(16), np.zeros(16, dtype=np.int64)
    benchmark(lambda: run.model.predict_tails(heads, rels))
